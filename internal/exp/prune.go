package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Exact-pruning study (DESIGN.md "Exact scan pruning"). The bound tier skips
// channel stripes whose score upper bound cannot beat the running top-K
// floor — bit-identical results, fewer flash reads and SCN comparisons.
// PruneSweep measures the skip rate and the simulated corpus throughput of a
// pruned engine against a dense one on the same block-clustered database,
// under Zipfian and uniform query traces, and is the artifact CI validates
// (BENCH_prune.json: skip rate > 0 and zero top-K mismatches on the Zipfian
// trace, pruned features/s at least the dense engine's).

// PruneConfig sizes the pruning study.
type PruneConfig struct {
	App            string  // workload application
	Features       int     // materialized database size
	Queries        int     // trace length per distribution
	K              int     // top-K
	StripeFeatures int     // bound-tier stripe granularity (slots per entry)
	Seed           int64   // database + trace seed
	Alpha          float64 // Zipfian skew
	Noise          float64 // in-cluster feature noise and query jitter bound
}

// DefaultPrune returns a CI-scale configuration (a few seconds total). The
// database is block-clustered — each run of Channels*StripeFeatures
// contiguous features shares a semantic centroid, so one block is one stripe
// row and stripe envelopes are tight.
func DefaultPrune() PruneConfig {
	return PruneConfig{App: "TextQA", Features: 2048, Queries: 8, K: 10,
		StripeFeatures: 8, Seed: 7, Alpha: 0.8, Noise: 0.02}
}

// PruneRow is one (trace, engine) cell of the study. Wall-clock time is
// reported for interactive runs but excluded from the JSON artifact so
// BENCH_prune.json is byte-identical across runs of the same configuration.
type PruneRow struct {
	Trace           string  `json:"trace"` // "zipfian" or "uniform"
	Mode            string  `json:"mode"`  // "dense" or "pruned"
	Queries         int     `json:"queries"`
	Features        int     `json:"features"`
	StripeFeatures  int     `json:"stripe_features"`
	StripesChecked  int64   `json:"stripes_checked"`
	StripesSkipped  int64   `json:"stripes_skipped"`
	FeaturesSkipped int64   `json:"features_skipped"`
	SkipRate        float64 `json:"skip_rate"` // features skipped / features scanned densely
	SimSec          float64 `json:"sim_sec"`
	FeaturesSec     float64 `json:"features_per_sec"` // corpus coverage rate: Features*Queries/SimSec
	SpeedupVsDense  float64 `json:"speedup_vs_dense"`
	Mismatches      int     `json:"mismatches"` // top-K entries differing from the dense engine
	WallSec         float64 `json:"-"`
}

// PruneSweep runs the study: for each trace distribution it executes the
// same query sequence on a dense engine and on a pruned engine over the same
// clustered database, comparing every top-K entry and reporting the pruned
// engine's skip accounting and speedup.
func PruneSweep(cfg PruneConfig) ([]PruneRow, error) {
	if cfg.Features < 1 || cfg.Queries < 1 || cfg.K < 1 || cfg.StripeFeatures < 1 {
		return nil, fmt.Errorf("exp: prune config %+v invalid", cfg)
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("exp: prune noise %v outside [0,1]", cfg.Noise)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	dims := app.SCN.FeatureElems()

	// Block-clustered database: block b's centroid is the semantic-ID-b query
	// vector, so trace queries land near their own cluster and the top-K floor
	// rises fast enough to discriminate between stripes.
	channels := core.DefaultOptions().Device.Geometry.Channels
	blockLen := channels * cfg.StripeFeatures
	blocks := (cfg.Features + blockLen - 1) / blockLen
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	vectors := make([][]float32, cfg.Features)
	for b := 0; b < blocks; b++ {
		centroid := workload.QueryVector(workload.Query{SemanticID: int64(b)}, dims, cfg.Seed+1)
		for i := b * blockLen; i < (b+1)*blockLen && i < cfg.Features; i++ {
			v := make([]float32, dims)
			for d := range v {
				v[d] = centroid[d] + float32(cfg.Noise)*(rng.Float32()*2-1)
			}
			vectors[i] = v
		}
	}

	run := func(prune bool, qfvs [][]float32) (rows []*core.QueryResult, simSec, wallSec float64, err error) {
		opts := core.DefaultOptions()
		opts.Prune = prune
		opts.PruneStripeFeatures = cfg.StripeFeatures
		ds, err := core.New(opts)
		if err != nil {
			return nil, 0, 0, err
		}
		dbID, err := ds.WriteDB(vectors)
		if err != nil {
			return nil, 0, 0, err
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			return nil, 0, 0, err
		}
		wallStart := time.Now()
		simStart := ds.Now()
		for _, q := range qfvs {
			qid, err := ds.Query(core.QuerySpec{QFV: q, K: cfg.K, Model: model, DB: dbID})
			if err != nil {
				return nil, 0, 0, err
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				return nil, 0, 0, err
			}
			rows = append(rows, res)
		}
		return rows, sim.Duration(ds.Now() - simStart).Seconds(), time.Since(wallStart).Seconds(), nil
	}

	var out []PruneRow
	for _, dist := range []workload.Distribution{workload.Zipfian, workload.Uniform} {
		trace := workload.GenerateTrace(workload.TraceConfig{
			Universe: int64(blocks), Length: cfg.Queries, Dist: dist,
			Alpha: cfg.Alpha, MaxJitter: cfg.Noise, Seed: cfg.Seed + 3,
		})
		qfvs := make([][]float32, cfg.Queries)
		for i, q := range trace.Queries {
			qfvs[i] = workload.QueryVector(q, dims, cfg.Seed+1)
		}

		dense, denseSim, denseWall, err := run(false, qfvs)
		if err != nil {
			return nil, err
		}
		pruned, prunedSim, prunedWall, err := run(true, qfvs)
		if err != nil {
			return nil, err
		}
		var ps core.PruneStats
		mismatches := 0
		for i := range qfvs {
			ps.Add(pruned[i].Prune)
			if len(pruned[i].TopK) != len(dense[i].TopK) {
				mismatches += len(dense[i].TopK)
				continue
			}
			for j := range dense[i].TopK {
				if pruned[i].TopK[j] != dense[i].TopK[j] {
					mismatches++
				}
			}
		}
		denseFeatures := float64(cfg.Features) * float64(cfg.Queries)
		out = append(out,
			PruneRow{
				Trace: dist.String(), Mode: "dense",
				Queries: cfg.Queries, Features: cfg.Features, StripeFeatures: cfg.StripeFeatures,
				SimSec: denseSim, FeaturesSec: denseFeatures / denseSim,
				SpeedupVsDense: 1, WallSec: denseWall,
			},
			PruneRow{
				Trace: dist.String(), Mode: "pruned",
				Queries: cfg.Queries, Features: cfg.Features, StripeFeatures: cfg.StripeFeatures,
				StripesChecked: ps.StripesChecked, StripesSkipped: ps.StripesSkipped,
				FeaturesSkipped: ps.FeaturesSkipped,
				SkipRate:        float64(ps.FeaturesSkipped) / denseFeatures,
				SimSec:          prunedSim, FeaturesSec: denseFeatures / prunedSim,
				SpeedupVsDense: denseSim / prunedSim,
				Mismatches:     mismatches, WallSec: prunedWall,
			})
	}
	return out, nil
}

// CellsPrune returns the study as header and rows.
func CellsPrune(rows []PruneRow) ([]string, [][]string) {
	header := []string{"Trace", "Mode", "Queries", "Features", "SF", "Checked", "Skipped",
		"Feat skipped", "Skip rate", "Sim (s)", "Features/s", "vs dense", "Mismatch", "Wall (s)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Trace, r.Mode, fmt.Sprint(r.Queries), fmt.Sprint(r.Features),
			fmt.Sprint(r.StripeFeatures), fmt.Sprint(r.StripesChecked),
			fmt.Sprint(r.StripesSkipped), fmt.Sprint(r.FeaturesSkipped),
			F(r.SkipRate), F(r.SimSec), F(r.FeaturesSec),
			F(r.SpeedupVsDense) + "x", fmt.Sprint(r.Mismatches), F(r.WallSec),
		})
	}
	return header, out
}

// FormatPrune renders the study.
func FormatPrune(rows []PruneRow) string {
	return FormatTable(CellsPrune(rows))
}
