package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/qcache"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// QCStudyConfig parameterizes the §6.5 query-cache study: TIR on 100M images
// (192 GB of feature vectors) with 100K queries against a 1K-entry cache.
// Trace length is reduced by default — miss rates converge long before 100K
// queries — and can be raised to the paper's scale.
type QCStudyConfig struct {
	Features     int64 // database size (100M in §6.5)
	Universe     int64 // distinct semantic queries behind the noised stream
	TraceLen     int
	CacheEntries int
	QCNAccuracy  float64
	Seed         int64
}

// DefaultQCStudy returns the §6.5 setup with a convergence-scaled trace.
func DefaultQCStudy() QCStudyConfig {
	return QCStudyConfig{
		Features:     100_000_000,
		Universe:     2000,
		TraceLen:     20_000,
		CacheEntries: 1000,
		QCNAccuracy:  0.95,
		Seed:         42,
	}
}

// qcnScore is the analytic stand-in for running the Universal Sentence
// Encoder over two query occurrences: same-intent pairs score near 1 with a
// jitter penalty; different intents land well below any useful threshold.
func qcnScore(a, b workload.Query) float64 {
	if a.SemanticID == b.SemanticID {
		s := 1 - 0.3*(a.Jitter+b.Jitter)
		if s < 0 {
			return 0
		}
		return s
	}
	// Deterministic pseudo-random dissimilar score in [0, 0.4).
	h := uint64(a.SemanticID*0x9E3779B9+b.SemanticID) * 0xBF58476D1CE4E5B9 >> 40
	return float64(h%400) / 1000
}

// SimulateQCTrace replays a trace through the similarity cache and returns
// the steady-state miss rate. The cache is warmed with the first half of the
// trace; the miss rate is measured over the second half (§6.5 warms the
// cache before measuring).
func SimulateQCTrace(cfg QCStudyConfig, dist workload.Distribution, alpha, threshold float64) float64 {
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe:  cfg.Universe,
		Length:    cfg.TraceLen,
		Dist:      dist,
		Alpha:     alpha,
		MaxJitter: 0.2,
		Seed:      cfg.Seed,
	})
	cache := qcache.New[workload.Query](cfg.CacheEntries, cfg.QCNAccuracy, qcnScore)
	warm := len(trace.Queries) / 2
	for _, q := range trace.Queries[:warm] {
		if _, hit := cache.Lookup(q, threshold); !hit {
			cache.Insert(q, nil)
		}
	}
	measured := cache.Stats()
	for _, q := range trace.Queries[warm:] {
		if _, hit := cache.Lookup(q, threshold); !hit {
			cache.Insert(q, nil)
		}
	}
	final := cache.Stats()
	misses := final.Misses - measured.Misses
	lookups := final.Lookups - measured.Lookups
	if lookups == 0 {
		return 1
	}
	return float64(misses) / float64(lookups)
}

// Fig13Row is one Fig. 13 x-axis point: speedups over the plain traditional
// system and the cache miss rate, at one error threshold.
type Fig13Row struct {
	Dist          string
	ThresholdPct  int
	MissRate      float64
	TraditionalQC float64 // Traditional + QCache over Traditional
	DeepStore     float64 // DeepStore (no QC) over Traditional
	DeepStoreQC   float64 // DeepStore + QCache over Traditional
}

// QCSpeedupRow holds the three Fig. 13 speedups for one miss rate.
type QCSpeedupRow struct {
	TraditionalQC float64
	DeepStore     float64
	DeepStoreQC   float64
}

// qcCosts precomputes the §6.5 system latencies: one full-database scan on
// the traditional and DeepStore systems, plus the cache lookup cost on each
// (the QCN runs on the channel-level accelerators in DeepStore — §6.5
// reports ~0.3 ms for 1000 entries — and on the GPU in the baseline).
type qcCosts struct {
	baseSec, dsSec       float64
	hostLookup, dsLookup float64
}

func computeQCCosts(window int64, cfg QCStudyConfig) (qcCosts, error) {
	app, err := workload.ByName("TIR")
	if err != nil {
		return qcCosts{}, err
	}
	baseCfg := baseline.DefaultConfig()
	baseSec, _ := baseCfg.ScanTime(app, cfg.Features, app.DefaultBatch)
	out, err := RunScanFeatures(app, accel.LevelChannel, ssd.DefaultConfig(), cfg.Features, window)
	if err != nil {
		return qcCosts{}, err
	}
	qcn := app.QCN()
	spec := accel.SpecForLevel(accel.LevelChannel, ssd.DefaultConfig())
	perQCN := float64(spec.Array.NetworkCost(qcn.LayerPlan()).Cycles) / spec.Array.FreqHz
	return qcCosts{
		baseSec:    baseSec,
		dsSec:      out.Seconds,
		dsLookup:   perQCN * float64((cfg.CacheEntries+spec.Count-1)/spec.Count),
		hostLookup: baseCfg.GPU.BatchComputeTime(qcn.LayerPlan(), cfg.CacheEntries),
	}, nil
}

func (c qcCosts) speedups(miss float64) QCSpeedupRow {
	return QCSpeedupRow{
		TraditionalQC: c.baseSec / (miss*(c.baseSec+c.hostLookup) + (1-miss)*c.hostLookup),
		DeepStore:     c.baseSec / c.dsSec,
		DeepStoreQC:   c.baseSec / (miss*(c.dsSec+c.dsLookup) + (1-miss)*c.dsLookup),
	}
}

// QCSpeedups composes a measured miss rate with the §6.5 system latencies.
func QCSpeedups(window int64, cfg QCStudyConfig, missRate float64) (QCSpeedupRow, error) {
	costs, err := computeQCCosts(window, cfg)
	if err != nil {
		return QCSpeedupRow{}, err
	}
	return costs.speedups(missRate), nil
}

// Figure13 sweeps the error threshold 0–20% for uniform and Zipfian(0.7)
// query streams (§6.5, Fig. 13), composing the measured miss rates with the
// scan and lookup latencies of each system.
func Figure13(window int64, cfg QCStudyConfig) ([]Fig13Row, error) {
	costs, err := computeQCCosts(window, cfg)
	if err != nil {
		return nil, err
	}

	var rows []Fig13Row
	dists := []struct {
		d     workload.Distribution
		alpha float64
		name  string
	}{
		{workload.Uniform, 0, "uniform"},
		{workload.Zipfian, 0.7, "zipf-0.7"},
	}
	for _, d := range dists {
		for _, pct := range []int{0, 2, 5, 8, 10, 12, 15, 18, 20} {
			miss := SimulateQCTrace(cfg, d.d, d.alpha, float64(pct)/100)
			s := costs.speedups(miss)
			rows = append(rows, Fig13Row{
				Dist:          d.name,
				ThresholdPct:  pct,
				MissRate:      miss,
				TraditionalQC: s.TraditionalQC,
				DeepStore:     s.DeepStore,
				DeepStoreQC:   s.DeepStoreQC,
			})
		}
	}
	return rows, nil
}

// CellsFigure13 returns the sweep as header and rows.
func CellsFigure13(rows []Fig13Row) ([]string, [][]string) {
	header := []string{"Dist", "Threshold %", "Miss %", "Trad+QC x", "DeepStore x", "DeepStore+QC x"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dist, fmt.Sprint(r.ThresholdPct), F(r.MissRate * 100),
			F(r.TraditionalQC), F(r.DeepStore), F(r.DeepStoreQC),
		})
	}
	return header, out
}

// FormatFigure13 renders the sweep.
func FormatFigure13(rows []Fig13Row) string {
	return FormatTable(CellsFigure13(rows))
}

// Fig14Row is one cache-size point of Fig. 14.
type Fig14Row struct {
	Dist     string
	Entries  int
	MissRate float64
}

// Figure14 sweeps the cache size 100–1000 entries at a 10% threshold for
// uniform, Zipfian(0.7), and Zipfian(0.8) streams (§6.5, Fig. 14).
func Figure14(cfg QCStudyConfig) []Fig14Row {
	dists := []struct {
		d     workload.Distribution
		alpha float64
		name  string
	}{
		{workload.Uniform, 0, "uniform"},
		{workload.Zipfian, 0.7, "zipf-0.7"},
		{workload.Zipfian, 0.8, "zipf-0.8"},
	}
	var rows []Fig14Row
	for _, d := range dists {
		for entries := 100; entries <= 1000; entries += 100 {
			c := cfg
			c.CacheEntries = entries
			rows = append(rows, Fig14Row{
				Dist:     d.name,
				Entries:  entries,
				MissRate: SimulateQCTrace(c, d.d, d.alpha, 0.10),
			})
		}
	}
	return rows
}

// CellsFigure14 returns the sweep as header and rows.
func CellsFigure14(rows []Fig14Row) ([]string, [][]string) {
	header := []string{"Dist", "Entries", "Miss %"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Dist, fmt.Sprint(r.Entries), F(r.MissRate * 100)})
	}
	return header, out
}

// FormatFigure14 renders the sweep.
func FormatFigure14(rows []Fig14Row) string {
	return FormatTable(CellsFigure14(rows))
}
