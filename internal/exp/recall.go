package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Query-cache recall study. The QC design rests on the §4.6 insight that
// "DNN-based queries have already tolerated a certain level of errors": a
// hit returns the cached entry's top-K re-ranked by the SCN instead of a
// fresh full scan. This experiment quantifies that tolerance — for a stream
// of paraphrased queries, what fraction of the true top-K does the cache-hit
// answer recover?

// RecallRow is one threshold point of the study.
type RecallRow struct {
	ThresholdPct int
	HitRate      float64
	// MeanRecall is the average |cacheTopK ∩ trueTopK| / K over cache hits
	// (1.0 when every hit returns exactly the full-scan answer).
	MeanRecall float64
	// Hits counts the queries the cache served.
	Hits int
}

// RecallConfig sizes the study.
type RecallConfig struct {
	Features int // materialized database size
	Intents  int // distinct query intents
	Queries  int // stream length
	K        int // top-K
	Entries  int // cache entries
	Seed     int64
	// Noise is the paraphrase perturbation added per occurrence.
	Noise float32
}

// DefaultRecall returns a laptop-scale configuration.
func DefaultRecall() RecallConfig {
	return RecallConfig{
		Features: 2000, Intents: 40, Queries: 300, K: 10, Entries: 64,
		Seed: 11, Noise: 0.02,
	}
}

// dotNet builds a similarity-faithful comparison network: a Hadamard front
// end summed by an FC with uniform positive weights — score ∝ q·d. Trained
// SCNs approximate exactly this kind of monotone similarity; an untrained
// random network has a near-degenerate score landscape where tiny paraphrase
// noise reshuffles rankings arbitrarily, which would measure noise rather
// than the cache design.
func dotNet(name string, fe int) (*nn.Network, error) {
	net, err := nn.NewNetwork(name, tensor.Shape{fe}, nn.CombineHadamard,
		nn.NewFC("sum", fe, 1, nn.ActSigmoid))
	if err != nil {
		return nil, err
	}
	// Weight scale matters: same-intent dot products are ≈ fe/3 and
	// cross-intent ones ≈ ±√(fe)/3. The 0.05 scale puts same-intent pairs
	// at sigmoid ≈ 0.96 and cross-intent pairs near 0.5, so the sigmoid
	// neither saturates into degenerate ties nor lets unrelated intents
	// score as similar.
	if fc, ok := net.Layers[0].(*nn.FC); ok {
		for i := range fc.W {
			fc.W[i] = 0.05
		}
	}
	return net, nil
}

// QCRecall sweeps the error threshold and measures hit rate and recall of
// cache-served answers against ground-truth full scans, on TextQA-shaped
// features (the cheapest workload; the study is SCN-agnostic).
func QCRecall(cfg RecallConfig) ([]RecallRow, error) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	fe := app.SCN.FeatureElems()
	scn, err := dotNet("recall-scn", fe)
	if err != nil {
		return nil, err
	}
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	host := baseline.HostScan{Net: scn}

	qcn, err := dotNet("recall-qcn", fe)
	if err != nil {
		return nil, err
	}

	// Query stream intents.
	intents := make([][]float32, cfg.Intents)
	for i := range intents {
		intents[i] = workload.NewFeatureDB(app, 1, cfg.Seed+100+int64(i)).Vectors[0]
	}

	// Plant relevance structure: real retrieval corpora contain items that
	// actually match each query intent, scored far above the background.
	// The first Intents×relevantPerIntent features are noisy copies of
	// their intent's vector; the rest stay random background.
	const relevantPerIntent = 15
	planted := workload.NewFeatureDB(app, cfg.Intents*relevantPerIntent, cfg.Seed+500)
	for i := 0; i < cfg.Intents; i++ {
		for r := 0; r < relevantPerIntent; r++ {
			idx := i*relevantPerIntent + r
			if idx >= len(db.Vectors) {
				break
			}
			for j := 0; j < fe; j++ {
				db.Vectors[idx][j] = intents[i][j] + 0.15*planted.Vectors[idx][j]
			}
		}
	}

	// Query stream: intents with per-occurrence paraphrase noise.
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe: int64(cfg.Intents), Length: cfg.Queries,
		Dist: workload.Zipfian, Alpha: 0.7, Seed: cfg.Seed,
	})
	noise := workload.NewFeatureDB(app, cfg.Queries, cfg.Seed+999)

	var rows []RecallRow
	for _, pct := range []int{5, 10, 20, 40} {
		ds, err := core.New(core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			return nil, err
		}
		model, err := ds.LoadModelNetwork(scn)
		if err != nil {
			return nil, err
		}
		if err := ds.SetQC(qcn, 1.0, cfg.Entries, float64(pct)/100); err != nil {
			return nil, err
		}
		row := RecallRow{ThresholdPct: pct}
		var recallSum float64
		for qi, q := range trace.Queries {
			qfv := make([]float32, fe)
			base := intents[q.SemanticID]
			for j := range qfv {
				qfv[j] = base[j] + cfg.Noise*noise.Vectors[qi][j]
			}
			qid, err := ds.Query(core.QuerySpec{QFV: qfv, K: cfg.K, Model: model, DB: dbID})
			if err != nil {
				return nil, err
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				return nil, err
			}
			if !res.CacheHit {
				continue
			}
			row.Hits++
			truth, err := host.TopK(qfv, db.Vectors, cfg.K)
			if err != nil {
				return nil, err
			}
			truthSet := map[int64]bool{}
			for _, e := range truth {
				truthSet[e.FeatureID] = true
			}
			overlap := 0
			for _, e := range res.TopK {
				if truthSet[e.FeatureID] {
					overlap++
				}
			}
			recallSum += float64(overlap) / float64(cfg.K)
		}
		row.HitRate = float64(row.Hits) / float64(cfg.Queries)
		if row.Hits > 0 {
			row.MeanRecall = recallSum / float64(row.Hits)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CellsRecall returns the study as header and rows.
func CellsRecall(rows []RecallRow) ([]string, [][]string) {
	header := []string{"Threshold %", "Hit rate", "Hits", "Mean recall@K"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.ThresholdPct), F(r.HitRate), fmt.Sprint(r.Hits), F(r.MeanRecall),
		})
	}
	return header, out
}

// FormatRecall renders the study.
func FormatRecall(rows []RecallRow) string {
	return FormatTable(CellsRecall(rows))
}
