package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// Fig2Row is one Figure 2 bar: the GPU+SSD baseline's per-batch latency
// breakdown for one application, batch size, and GPU generation.
type Fig2Row struct {
	App        string
	GPU        string
	Batch      int
	ReadMs     float64
	MemcpyMs   float64
	ComputeMs  float64
	TotalMs    float64
	IOFraction float64
}

// Figure2 profiles every application across its batch-size sweep on both
// GPU generations, reproducing the §3 characterization: storage I/O is
// 56–90% of execution time and does not improve from Pascal to Volta.
func Figure2() []Fig2Row {
	var rows []Fig2Row
	for _, g := range []gpu.Model{gpu.Pascal(), gpu.Volta()} {
		cfg := baseline.DefaultConfig()
		cfg.GPU = g
		for _, a := range workload.Apps() {
			for _, b := range a.BatchSizes {
				bd := cfg.Batch(a, b)
				rows = append(rows, Fig2Row{
					App:        a.Name,
					GPU:        g.Name,
					Batch:      b,
					ReadMs:     bd.ReadSec * 1e3,
					MemcpyMs:   bd.MemcpySec * 1e3,
					ComputeMs:  bd.ComputeSec * 1e3,
					TotalMs:    bd.TotalSec() * 1e3,
					IOFraction: bd.IOFraction(),
				})
			}
		}
	}
	return rows
}

// CellsFigure2 returns the breakdown as header and rows for export.
func CellsFigure2(rows []Fig2Row) ([]string, [][]string) {
	header := []string{"App", "GPU", "Batch", "Read(ms)", "Memcpy(ms)", "Compute(ms)", "Total(ms)", "IO %"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.GPU, fmt.Sprint(r.Batch),
			F(r.ReadMs), F(r.MemcpyMs), F(r.ComputeMs), F(r.TotalMs),
			fmt.Sprintf("%.0f", r.IOFraction*100),
		})
	}
	return header, out
}

// FormatFigure2 renders the breakdown.
func FormatFigure2(rows []Fig2Row) string {
	return FormatTable(CellsFigure2(rows))
}
