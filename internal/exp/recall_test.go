package exp

import "testing"

// TestQCRecallHighUnderLowNoise validates the §4.6 premise quantitatively:
// with small paraphrase noise, cache-served answers recover most of the true
// top-K, and relaxing the threshold increases hit rate without destroying
// recall.
func TestQCRecallHighUnderLowNoise(t *testing.T) {
	cfg := DefaultRecall()
	cfg.Features = 800
	cfg.Queries = 120
	rows, err := QCRecall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	prevHit := -1.0
	anyHits := false
	for _, r := range rows {
		if r.HitRate < prevHit-0.02 {
			t.Errorf("hit rate decreased with threshold: %.2f -> %.2f", prevHit, r.HitRate)
		}
		prevHit = r.HitRate
		if r.Hits == 0 {
			continue
		}
		anyHits = true
		// The re-ranked cached top-K must recover the bulk of the truth.
		if r.MeanRecall < 0.6 {
			t.Errorf("threshold %d%%: mean recall %.2f < 0.6", r.ThresholdPct, r.MeanRecall)
		}
	}
	if !anyHits {
		t.Error("no threshold produced cache hits")
	}
	if s := FormatRecall(rows); len(s) < 40 {
		t.Errorf("format too short: %q", s)
	}
}
