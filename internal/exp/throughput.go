package exp

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Query-throughput study. The paper evaluates single-query scan latency;
// a deployed query service also cares about sustained load. This extension
// treats each system as an M/D/1 queue — Poisson arrivals, deterministic
// per-query service (a full scan, or a QC lookup/miss mix) — and reports
// the saturation throughput plus the mean latency at fractions of it.

// ThroughputRow is one system's service envelope for one application.
type ThroughputRow struct {
	App    string
	System string
	// ServiceSec is the deterministic per-query service time.
	ServiceSec float64
	// SaturationQPS is 1/ServiceSec.
	SaturationQPS float64
	// LatencyAt maps utilization (0.5, 0.8, 0.95) to mean sojourn time.
	LatencyAt map[float64]float64
}

// mD1Sojourn returns the M/D/1 mean sojourn time at utilization rho for
// deterministic service time s: W = s + rho*s/(2(1-rho)).
func mD1Sojourn(s, rho float64) float64 {
	if rho <= 0 || rho >= 1 {
		return math.NaN()
	}
	return s + rho*s/(2*(1-rho))
}

// Throughput computes the envelope for the GPU+SSD baseline and the
// channel-level DeepStore design, with and without the query cache (at the
// given steady-state miss rate).
func Throughput(window int64, qcMissRate float64) ([]ThroughputRow, error) {
	if qcMissRate < 0 || qcMissRate > 1 {
		return nil, fmt.Errorf("exp: miss rate %v outside [0,1]", qcMissRate)
	}
	baseCfg := baseline.DefaultConfig()
	utils := []float64{0.5, 0.8, 0.95}
	var rows []ThroughputRow

	addRow := func(app, system string, service float64) {
		r := ThroughputRow{
			App: app, System: system,
			ServiceSec:    service,
			SaturationQPS: 1 / service,
			LatencyAt:     map[float64]float64{},
		}
		for _, u := range utils {
			r.LatencyAt[u] = mD1Sojourn(service, u)
		}
		rows = append(rows, r)
	}

	for _, app := range workload.Apps() {
		features := workload.PaperSpec(app).Features
		baseSec, _ := baseCfg.ScanTime(app, features, app.DefaultBatch)
		addRow(app.Name, "Traditional", baseSec)

		out, err := RunScan(app, accel.LevelChannel, ssd.DefaultConfig(), window)
		if err != nil {
			return nil, err
		}
		addRow(app.Name, "DeepStore", out.Seconds)

		// With the query cache: service = miss*scan + lookup (the lookup
		// runs on every query; hits skip the scan).
		spec := accel.SpecForLevel(accel.LevelChannel, ssd.DefaultConfig())
		qcn := app.QCN()
		perQCN := float64(spec.Array.NetworkCost(qcn.LayerPlan()).Cycles) / spec.Array.FreqHz
		lookup := perQCN * float64((1000+spec.Count-1)/spec.Count)
		addRow(app.Name, "DeepStore+QC", qcMissRate*out.Seconds+lookup)
	}
	return rows, nil
}

// CellsThroughput returns the study as header and rows.
func CellsThroughput(rows []ThroughputRow) ([]string, [][]string) {
	header := []string{"App", "System", "Service(s)", "Sat QPS", "Lat@50%", "Lat@80%", "Lat@95%"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.System, F(r.ServiceSec), F(r.SaturationQPS),
			F(r.LatencyAt[0.5]), F(r.LatencyAt[0.8]), F(r.LatencyAt[0.95]),
		})
	}
	return header, out
}

// FormatThroughput renders the study.
func FormatThroughput(rows []ThroughputRow) string {
	return FormatTable(CellsThroughput(rows))
}
