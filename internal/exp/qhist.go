package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Query-history study (DESIGN.md §15). The learned admission policy mines
// the persistent query history — frequency, recency, and observed per-group
// hit accuracy — to decide which queries deserve cache residency, instead of
// admitting everything and evicting LRU. QHistSweep replays the same
// Zipfian and uniform traces through an LRU engine and a learned-admission
// engine whose cache is far smaller than the hot set, and checks every
// miss-path answer against a cache-off oracle. It is the artifact CI
// validates (BENCH_qhist.json: learned hit-rate above LRU on the Zipfian
// trace, zero miss-path top-K mismatches, byte-deterministic output).

// QHistConfig sizes the query-history study.
type QHistConfig struct {
	App          string  // workload application
	Features     int     // materialized database size
	Queries      int     // trace length per distribution
	K            int     // top-K
	Entries      int     // cache capacity (much smaller than the hot set)
	Universe     int64   // distinct semantic queries in the trace
	Alpha        float64 // Zipfian skew
	Threshold    float64 // cache hit threshold
	MineInterval int     // records between admission minings
	Seed         int64   // database + trace seed
}

// DefaultQHist returns a CI-scale configuration: a 64-intent universe
// pounding an 8-entry cache, so admission decisions — not capacity — decide
// the hit-rate.
func DefaultQHist() QHistConfig {
	return QHistConfig{App: "TextQA", Features: 256, Queries: 96, K: 4,
		Entries: 8, Universe: 64, Alpha: 1.1, Threshold: 0.2,
		MineInterval: 8, Seed: 7}
}

// QHistRow is one (trace, policy) cell of the study. Wall-clock time is
// excluded from the JSON artifact so BENCH_qhist.json is byte-identical
// across runs of the same configuration.
type QHistRow struct {
	Trace            string  `json:"trace"`  // "zipfian" or "uniform"
	Policy           string  `json:"policy"` // "lru" or "learned"
	Queries          int     `json:"queries"`
	Entries          int     `json:"entries"`
	Universe         int64   `json:"universe"`
	Hits             uint64  `json:"hits"`
	Misses           uint64  `json:"misses"`
	HitRate          float64 `json:"hit_rate"`
	AdmissionRejects uint64  `json:"admission_rejects"`
	Evictions        uint64  `json:"evictions"`
	Records          uint64  `json:"hist_records"`
	Mines            uint64  `json:"hist_mines"`
	Groups           int     `json:"hist_groups"`
	SimSec           float64 `json:"sim_sec"`
	MissMismatches   int     `json:"miss_mismatches"` // miss-path top-K entries differing from the cache-off oracle
	WallSec          float64 `json:"-"`
}

// qhistQCN is a scaled-dot-product Hadamard QCN. Trace query vectors are
// uniform on [-1,1], so an exact repeat's self-dot concentrates near fe/3
// while unrelated pairs concentrate near 0 (std ~ sqrt(fe/3)); the 8/fe
// weight puts the sigmoid at ~0.93 for repeats and needs a ~5-sigma
// coincidence for a false hit — so cache hits deterministically track exact
// intent repeats.
func qhistQCN(fe int) *nn.Network {
	qcn := nn.MustNetwork("qhist-qcn", tensor.Shape{fe}, nn.CombineHadamard,
		nn.NewFC("sum", fe, 1, nn.ActSigmoid))
	fc := qcn.Layers[0].(*nn.FC)
	for i := range fc.W {
		fc.W[i] = 8 / float32(fe)
	}
	return qcn
}

// QHistSweep runs the study: per distribution, a cache-off oracle engine
// establishes the exact per-query answers, then an LRU engine and a
// learned-admission engine (identical except Options.CacheAdmission) replay
// the same trace with history enabled.
func QHistSweep(cfg QHistConfig) ([]QHistRow, error) {
	if cfg.Features < 1 || cfg.Queries < 1 || cfg.K < 1 || cfg.Entries < 1 ||
		cfg.Universe < 1 || cfg.MineInterval < 1 {
		return nil, fmt.Errorf("exp: qhist config %+v invalid", cfg)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	dims := app.SCN.FeatureElems()
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+2)

	type runOut struct {
		results []*core.QueryResult
		ds      *core.DeepStore
		simSec  float64
		wallSec float64
	}
	run := func(admission core.CacheAdmission, withCache bool, qfvs [][]float32) (runOut, error) {
		opts := core.DefaultOptions()
		if withCache {
			opts.History = true
			opts.CacheAdmission = admission
			opts.HistoryMineInterval = cfg.MineInterval
		}
		ds, err := core.New(opts)
		if err != nil {
			return runOut{}, err
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			return runOut{}, err
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			return runOut{}, err
		}
		if withCache {
			if err := ds.SetQC(qhistQCN(dims), 1.0, cfg.Entries, cfg.Threshold); err != nil {
				return runOut{}, err
			}
		}
		out := runOut{ds: ds}
		wallStart := time.Now()
		simStart := ds.Now()
		for _, q := range qfvs {
			qid, err := ds.Query(core.QuerySpec{QFV: q, K: cfg.K, Model: model, DB: dbID})
			if err != nil {
				return runOut{}, err
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				return runOut{}, err
			}
			out.results = append(out.results, res)
		}
		out.simSec = sim.Duration(ds.Now() - simStart).Seconds()
		out.wallSec = time.Since(wallStart).Seconds()
		return out, nil
	}

	var out []QHistRow
	for _, dist := range []workload.Distribution{workload.Zipfian, workload.Uniform} {
		trace := workload.GenerateTrace(workload.TraceConfig{
			Universe: cfg.Universe, Length: cfg.Queries, Dist: dist,
			Alpha: cfg.Alpha, Seed: cfg.Seed + 3,
		})
		qfvs := make([][]float32, cfg.Queries)
		for i, q := range trace.Queries {
			qfvs[i] = workload.QueryVector(q, dims, cfg.Seed+1)
		}

		oracle, err := run(core.AdmissionLRU, false, qfvs)
		if err != nil {
			return nil, err
		}
		for _, admission := range []core.CacheAdmission{core.AdmissionLRU, core.AdmissionLearned} {
			got, err := run(admission, true, qfvs)
			if err != nil {
				return nil, err
			}
			var hits, misses uint64
			mismatches := 0
			for i, r := range got.results {
				if r.CacheHit {
					hits++
					continue
				}
				misses++
				// Miss-path answers must be bit-identical to the cache-off
				// oracle: the cache can only change WHICH queries scan, not
				// what a scan returns.
				if len(r.TopK) != len(oracle.results[i].TopK) {
					mismatches += len(oracle.results[i].TopK)
					continue
				}
				for j := range r.TopK {
					if r.TopK[j] != oracle.results[i].TopK[j] {
						mismatches++
					}
				}
			}
			snap := got.ds.MetricsSnapshot()
			hs := got.ds.HistoryStats()
			out = append(out, QHistRow{
				Trace: dist.String(), Policy: admission.String(),
				Queries: cfg.Queries, Entries: cfg.Entries, Universe: cfg.Universe,
				Hits: hits, Misses: misses,
				HitRate:          float64(hits) / float64(cfg.Queries),
				AdmissionRejects: uint64(snap.Counters["qcache_admission_rejects"]),
				Evictions:        uint64(snap.Counters["qcache_evictions"]),
				Records:          hs.Records,
				Mines:            hs.Mines,
				Groups:           hs.Groups,
				SimSec:           got.simSec,
				MissMismatches:   mismatches,
				WallSec:          got.wallSec,
			})
		}
	}
	return out, nil
}

// CellsQHist returns the study as header and rows.
func CellsQHist(rows []QHistRow) ([]string, [][]string) {
	header := []string{"Trace", "Policy", "Queries", "Entries", "Universe", "Hits", "Misses",
		"Hit rate", "Rejects", "Evictions", "Records", "Mines", "Groups", "Sim (s)", "Mismatch", "Wall (s)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Trace, r.Policy, fmt.Sprint(r.Queries), fmt.Sprint(r.Entries),
			fmt.Sprint(r.Universe), fmt.Sprint(r.Hits), fmt.Sprint(r.Misses),
			F(r.HitRate), fmt.Sprint(r.AdmissionRejects), fmt.Sprint(r.Evictions),
			fmt.Sprint(r.Records), fmt.Sprint(r.Mines), fmt.Sprint(r.Groups),
			F(r.SimSec), fmt.Sprint(r.MissMismatches), F(r.WallSec),
		})
	}
	return header, out
}

// FormatQHist renders the study.
func FormatQHist(rows []QHistRow) string {
	return FormatTable(CellsQHist(rows))
}
