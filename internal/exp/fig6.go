package exp

import (
	"fmt"

	"repro/internal/dse"
)

// Figure6 sweeps systolic-array sizes for the largest FC and conv layers
// (best aspect ratio per point, infinite memory bandwidth), reproducing the
// §4.5 saturation study.
func Figure6() []dse.Fig6Point {
	return dse.Figure6()
}

// CellsFigure6 returns the sweep as header and rows for export.
func CellsFigure6(points []dse.Fig6Point) ([]string, [][]string) {
	header := []string{"PEs", "FC speedup", "Conv speedup", "FC aspect", "Conv aspect"}
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			fmt.Sprint(p.PEs),
			F(p.FCSpeedup),
			F(p.ConvSpeedup),
			fmt.Sprintf("%dx%d", p.FCBestAspect.Rows, p.FCBestAspect.Cols),
			fmt.Sprintf("%dx%d", p.ConvBestAspect.Rows, p.ConvBestAspect.Cols),
		})
	}
	return header, out
}

// FormatFigure6 renders the sweep.
func FormatFigure6(points []dse.Fig6Point) string {
	s := FormatTable(CellsFigure6(points))
	s += fmt.Sprintf("\nFC saturates at %d PEs; conv at %d PEs (paper: 512 and 1024).\n",
		dse.SaturationPE(points, false, 0.05), dse.SaturationPE(points, true, 0.05))
	return s
}
