package exp

import (
	"testing"

	"repro/internal/obs"
)

// TestLatencyBreakdown: the breakdown replay succeeds, its stage totals sum
// exactly to the end-to-end latency (LatencyBreakdown itself errors
// otherwise, but assert here too so a regression names the numbers), the
// cache produces hits so all four stages appear, and the table renders.
func TestLatencyBreakdown(t *testing.T) {
	cfg := BreakdownConfig{Features: 400, Queries: 24, K: 5, Seed: 7,
		QCEntries: 64, QCThreshold: 0.2}
	r, err := LatencyBreakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumStageStats(r.Report.Stages); got != r.Report.TotalLatency {
		t.Fatalf("stage totals %v != end-to-end latency %v", got, r.Report.TotalLatency)
	}
	if r.Report.CacheHits == 0 {
		t.Error("deterministic QCN produced no cache hits")
	}
	names := map[string]bool{}
	for _, s := range r.Report.Stages {
		names[s.Name] = true
	}
	for _, want := range []string{obs.StageQCacheLookup, obs.StageScan, obs.StageRerank, obs.StageDMA} {
		if !names[want] {
			t.Errorf("stage %q missing from breakdown", want)
		}
	}
	if len(r.Snapshot.Counters) == 0 {
		t.Error("empty metrics snapshot")
	}
	header, rows := CellsBreakdown(r)
	if len(header) != 5 {
		t.Errorf("header has %d columns, want 5", len(header))
	}
	// One row per stage plus the trailing total row.
	if len(rows) != len(r.Report.Stages)+1 {
		t.Errorf("%d rows for %d stages", len(rows), len(r.Report.Stages))
	}
	if FormatBreakdown(r) == "" {
		t.Error("empty rendering")
	}
}

func TestLatencyBreakdownValidation(t *testing.T) {
	if _, err := LatencyBreakdown(BreakdownConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}
