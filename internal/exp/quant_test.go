package exp

import "testing"

// quantTestConfig shrinks the default sweep to test scale while keeping the
// database large enough to span several flash pages per channel at int8
// width — below that the page-granular event model charges int8 scans whole
// pages of compute for partial tables and the speedup disappears (the same
// sizing note as DefaultQuant).
func quantTestConfig() QuantConfig {
	cfg := DefaultQuant()
	cfg.Features = 8192
	cfg.Queries = 3
	return cfg
}

func TestQuantSweep(t *testing.T) {
	cfg := quantTestConfig()
	rows, err := QuantSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[string]QuantRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.SimSec <= 0 || r.FeaturesSec <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Mode, r)
		}
	}
	fp32, ok1 := byMode["fp32"]
	approx, ok2 := byMode["int8"]
	exact, ok3 := byMode["int8-exact"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing modes in %v", rows)
	}
	if fp32.RecallAtK != 1 || fp32.Mismatches != 0 || fp32.SpeedupVsFP32 != 1 {
		t.Errorf("fp32 reference row not self-consistent: %+v", fp32)
	}
	// The int8 table is a quarter the flash bytes: simulated corpus
	// throughput must beat fp32 at this scale.
	if approx.FeaturesSec <= fp32.FeaturesSec {
		t.Errorf("int8 features/s %.0f not above fp32 %.0f", approx.FeaturesSec, fp32.FeaturesSec)
	}
	// Approximate mode tolerates quantization error but must stay useful.
	if approx.RecallAtK < 0.95 {
		t.Errorf("int8 recall@K %.3f < 0.95", approx.RecallAtK)
	}
	// Two-pass mode is exact: every entry matches the fp32 engine.
	if exact.Mismatches != 0 || exact.RecallAtK != 1 {
		t.Errorf("int8-exact not exact: %+v", exact)
	}
	if exact.Margin != cfg.Margin {
		t.Errorf("int8-exact margin %d, want %d", exact.Margin, cfg.Margin)
	}

	header, cells := CellsQuant(rows)
	if len(cells) != len(rows) {
		t.Fatalf("CellsQuant: %d rows, want %d", len(cells), len(rows))
	}
	for _, row := range cells {
		if len(row) != len(header) {
			t.Fatalf("CellsQuant: row width %d != header %d", len(row), len(header))
		}
	}
	if FormatQuant(rows) == "" {
		t.Error("FormatQuant returned empty output")
	}
}

func TestQuantSweepRejectsInvalidConfig(t *testing.T) {
	cfg := quantTestConfig()
	cfg.Margin = 0
	if _, err := QuantSweep(cfg); err == nil {
		t.Error("QuantSweep accepted margin 0")
	}
	cfg = quantTestConfig()
	cfg.Features = 0
	if _, err := QuantSweep(cfg); err == nil {
		t.Error("QuantSweep accepted zero features")
	}
}

func TestQuantMarginRecall(t *testing.T) {
	cfg := quantTestConfig()
	cfg.Features = 4096 // recall trend needs less flash scale than throughput
	rows, err := QuantMarginRecall(cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, r := range rows {
		if r.RecallAtK < 0 || r.RecallAtK > 1 {
			t.Errorf("margin %d: recall %v outside [0,1]", r.Margin, r.RecallAtK)
		}
		// Wider candidate sets can only help: recall is non-decreasing in
		// the margin on a fixed stream.
		if i > 0 && r.RecallAtK < rows[i-1].RecallAtK {
			t.Errorf("recall dropped from %.3f (margin %d) to %.3f (margin %d)",
				rows[i-1].RecallAtK, rows[i-1].Margin, r.RecallAtK, r.Margin)
		}
	}
	// By margin 4 the exact top-K survives the int8 first pass on this
	// landscape (the acceptance setting of the sweep and of CI).
	last := rows[len(rows)-1]
	if last.Mismatches != 0 || last.RecallAtK != 1 {
		t.Errorf("margin %d not exact: %+v", last.Margin, last)
	}

	header, cells := CellsQuantMargin(rows)
	if len(cells) != len(rows) {
		t.Fatalf("CellsQuantMargin: %d rows, want %d", len(cells), len(rows))
	}
	for _, row := range cells {
		if len(row) != len(header) {
			t.Fatalf("CellsQuantMargin: row width %d != header %d", len(row), len(header))
		}
	}
	if FormatQuantMargin(rows) == "" {
		t.Error("FormatQuantMargin returned empty output")
	}
}
