package exp

import (
	"math"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Fig8Row is one application's Figure 8 / Table 4 measurement: speedups of
// the wimpy-core software baseline and the three DeepStore accelerator
// levels over the GPU+SSD system, plus the Table 4 energy-efficiency
// improvements (perf/Watt vs the Volta GPU).
type Fig8Row struct {
	App string

	BaselineSec float64
	WimpySec    float64
	LevelSec    map[accel.Level]float64 // NaN when unsupported

	WimpySpeedup float64
	Speedup      map[accel.Level]float64 // Table 4 "Speedup" column
	EnergyEff    map[accel.Level]float64 // Table 4 "Energy Efficiency" column
}

// PaperTable4 holds the paper-reported Table 4 values for comparison in
// EXPERIMENTS.md. NaN marks the unsupported chip-level ReId entry.
var PaperTable4 = map[string]map[accel.Level][2]float64{ // [speedup, energy eff]
	"ReId":   {accel.LevelSSD: {0.1, 0.7}, accel.LevelChannel: {3.9, 17.1}, accel.LevelChip: {math.NaN(), math.NaN()}},
	"MIR":    {accel.LevelSSD: {0.3, 1.6}, accel.LevelChannel: {8.3, 28.0}, accel.LevelChip: {1.0, 2.6}},
	"ESTP":   {accel.LevelSSD: {0.6, 2.8}, accel.LevelChannel: {13.2, 38.6}, accel.LevelChip: {1.9, 3.2}},
	"TIR":    {accel.LevelSSD: {0.4, 2.1}, accel.LevelChannel: {10.7, 35.6}, accel.LevelChip: {1.5, 3.7}},
	"TextQA": {accel.LevelSSD: {0.4, 2.2}, accel.LevelChannel: {17.7, 78.6}, accel.LevelChip: {4.6, 13.7}},
}

// Figure8 runs the Figure 8 / Table 4 experiment: every application on the
// wimpy-core baseline and all three accelerator levels, against the GPU+SSD
// system, on the §6.1 databases.
func Figure8(window int64) ([]Fig8Row, error) {
	devCfg := ssd.DefaultConfig()
	baseCfg := baseline.DefaultConfig()
	wimpy := baseline.DefaultWimpy()

	var rows []Fig8Row
	for _, app := range workload.Apps() {
		features := workload.PaperSpec(app).Features
		baseSec, baseJ := BaselineScan(app, baseCfg, features)
		row := Fig8Row{
			App:         app.Name,
			BaselineSec: baseSec,
			WimpySec:    wimpy.ScanTime(app, features),
			LevelSec:    map[accel.Level]float64{},
			Speedup:     map[accel.Level]float64{},
			EnergyEff:   map[accel.Level]float64{},
		}
		row.WimpySpeedup = baseSec / row.WimpySec
		for _, level := range accel.Levels() {
			out, err := RunScan(app, level, devCfg, window)
			if err != nil {
				return nil, err
			}
			if out.Unsupported {
				row.LevelSec[level] = math.NaN()
				row.Speedup[level] = math.NaN()
				row.EnergyEff[level] = math.NaN()
				continue
			}
			row.LevelSec[level] = out.Seconds
			row.Speedup[level] = baseSec / out.Seconds
			// Energy efficiency = (perf/W)_deepstore / (perf/W)_gpu
			// = (baseJ / deepstoreJ) since perf ratio is speedup and
			// power = J/t: (1/J_ds)/(1/J_base).
			row.EnergyEff[level] = baseJ / DeepStoreEnergyJ(out)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DeepStore static power: the stock SSD's active draw plus accelerator
// leakage/clock-tree power (~30% of the 55 W budget), charged for the whole
// scan on top of the activity-based dynamic energy.
const (
	ssdActivePowerW   = 12.0
	accelStaticPowerW = 16.5
)

// DeepStoreEnergyJ converts a scan outcome to total Joules: dynamic activity
// energy plus static power over the scan duration.
func DeepStoreEnergyJ(out ScanOutcome) float64 {
	return out.Energy.Total() + out.Seconds*(ssdActivePowerW+accelStaticPowerW)
}

// CellsFigure8 returns the experiment as header and rows for export.
func CellsFigure8(rows []Fig8Row) ([]string, [][]string) {
	header := []string{"App", "Base(s)", "Wimpy x", "SSD x", "Chan x", "Chip x", "SSD E", "Chan E", "Chip E"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			F(r.BaselineSec),
			F(r.WimpySpeedup),
			F(r.Speedup[accel.LevelSSD]),
			F(r.Speedup[accel.LevelChannel]),
			F(r.Speedup[accel.LevelChip]),
			F(r.EnergyEff[accel.LevelSSD]),
			F(r.EnergyEff[accel.LevelChannel]),
			F(r.EnergyEff[accel.LevelChip]),
		})
	}
	return header, out
}

// FormatFigure8 renders the experiment as text.
func FormatFigure8(rows []Fig8Row) string {
	return FormatTable(CellsFigure8(rows))
}
