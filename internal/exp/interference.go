package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Interference study. §4.5 claims the accelerators sit only in the read path
// and "do not introduce much overhead to regular storage operations"; this
// experiment quantifies the mutual slowdown when an in-storage scan and a
// regular host read stream share the device: the scan and a StreamToHost of
// a second database run concurrently on one engine, and both are compared
// against their isolated runs.
type InterferenceResult struct {
	App   string
	Level accel.Level
	// ScanAloneSec and ScanSharedSec are the scan's isolated vs. contended
	// times; StreamAloneSec and StreamSharedSec likewise for the host read.
	ScanAloneSec    float64
	ScanSharedSec   float64
	StreamAloneSec  float64
	StreamSharedSec float64
}

// ScanSlowdown is contended/isolated for the scan.
func (r InterferenceResult) ScanSlowdown() float64 { return r.ScanSharedSec / r.ScanAloneSec }

// StreamSlowdown is contended/isolated for the regular host read.
func (r InterferenceResult) StreamSlowdown() float64 {
	return r.StreamSharedSec / r.StreamAloneSec
}

// Interference runs the study for one application and level. scanFeatures
// and streamFeatures size the two databases (both exact-simulated; keep them
// modest).
func Interference(appName string, level accel.Level, scanFeatures, streamFeatures int64) (InterferenceResult, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return InterferenceResult{}, err
	}
	res := InterferenceResult{App: appName, Level: level}

	build := func() (*ssd.Device, *sim.Engine, error) {
		e := sim.NewEngine()
		dev, err := ssd.New(e, ssd.DefaultConfig())
		return dev, e, err
	}

	// Isolated scan.
	{
		dev, _, err := build()
		if err != nil {
			return res, err
		}
		meta, err := dev.CreateDB("scan", app.FeatureBytes(), scanFeatures)
		if err != nil {
			return res, err
		}
		out, err := accel.Scan(accel.ScanRequest{
			Device: dev, Spec: accel.SpecForLevel(level, dev.Config),
			Net: app.SCN, Layout: meta.Layout,
		})
		if err != nil {
			return res, err
		}
		res.ScanAloneSec = out.Elapsed.Seconds()
	}

	// Isolated stream.
	{
		dev, e, err := build()
		if err != nil {
			return res, err
		}
		meta, err := dev.CreateDB("stream", app.FeatureBytes(), streamFeatures)
		if err != nil {
			return res, err
		}
		var stats ssd.StreamStats
		dev.StreamToHost(meta, 0, func(s ssd.StreamStats) { stats = s })
		e.Run()
		res.StreamAloneSec = stats.Duration().Seconds()
	}

	// Shared device: the stream starts, then the scan runs on the same
	// engine; both contend for planes and channel buses.
	{
		dev, e, err := build()
		if err != nil {
			return res, err
		}
		scanMeta, err := dev.CreateDB("scan", app.FeatureBytes(), scanFeatures)
		if err != nil {
			return res, err
		}
		streamMeta, err := dev.CreateDB("stream", app.FeatureBytes(), streamFeatures)
		if err != nil {
			return res, err
		}
		var stats ssd.StreamStats
		done := false
		dev.StreamToHost(streamMeta, 0, func(s ssd.StreamStats) { stats = s; done = true })
		out, err := accel.Scan(accel.ScanRequest{
			Device: dev, Spec: accel.SpecForLevel(level, dev.Config),
			Net: app.SCN, Layout: scanMeta.Layout,
		})
		if err != nil {
			return res, err
		}
		e.Run() // drain the stream if it outlives the scan
		if !done {
			return res, fmt.Errorf("exp: interference stream never completed")
		}
		res.ScanSharedSec = out.Elapsed.Seconds()
		res.StreamSharedSec = stats.Duration().Seconds()
	}
	return res, nil
}

// CellsInterference returns the study as header and rows.
func CellsInterference(rows []InterferenceResult) ([]string, [][]string) {
	header := []string{"App", "Level", "Scan alone(s)", "Scan shared(s)", "Scan slowdown",
		"Stream alone(s)", "Stream shared(s)", "Stream slowdown"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Level.String(),
			F(r.ScanAloneSec), F(r.ScanSharedSec), F(r.ScanSlowdown()),
			F(r.StreamAloneSec), F(r.StreamSharedSec), F(r.StreamSlowdown()),
		})
	}
	return header, out
}

// FormatInterference renders the study.
func FormatInterference(rows []InterferenceResult) string {
	return FormatTable(CellsInterference(rows))
}
