package exp

import (
	"math"
	"testing"

	"repro/internal/accel"
)

// TestTable4WithinFactorOfPaper is the reproduction guarantee, cell by cell:
// every Table 4 speedup and energy-efficiency value must land within a
// bounded factor of the paper's number. Channel level (the headline design)
// is held to a tighter band than the resource-starved corners, whose
// absolute values depend more on modeling constants (see EXPERIMENTS.md).
func TestTable4WithinFactorOfPaper(t *testing.T) {
	rows, err := Figure8(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	band := func(level accel.Level) float64 {
		if level == accel.LevelChannel {
			return 1.6 // headline: within 60%
		}
		return 5 // SSD/chip corners: within 5x
	}
	for _, r := range rows {
		ref := PaperTable4[r.App]
		for _, level := range accel.Levels() {
			wantSpeed, wantEff := ref[level][0], ref[level][1]
			gotSpeed, gotEff := r.Speedup[level], r.EnergyEff[level]
			if math.IsNaN(wantSpeed) != math.IsNaN(gotSpeed) {
				t.Errorf("%s/%v: supported-ness mismatch (paper %v, got %v)",
					r.App, level, wantSpeed, gotSpeed)
				continue
			}
			if math.IsNaN(wantSpeed) {
				continue
			}
			b := band(level)
			if f := factor(gotSpeed, wantSpeed); f > b {
				t.Errorf("%s/%v: speedup %.2f vs paper %.2f (%.1fx apart, band %.1fx)",
					r.App, level, gotSpeed, wantSpeed, f, b)
			}
			if f := factor(gotEff, wantEff); f > b {
				t.Errorf("%s/%v: energy eff %.2f vs paper %.2f (%.1fx apart, band %.1fx)",
					r.App, level, gotEff, wantEff, f, b)
			}
		}
	}
}

// factor returns how many times apart two positive values are (always >= 1).
func factor(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.Inf(1)
	}
	if a > b {
		return a / b
	}
	return b / a
}
