package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Online-rebalance study. A live sharded cluster keeps answering queries
// while a Rebalancer migrates the hottest feature window (picked from the
// cluster's own accumulated demand profile) to a freshly added shard. Every
// answer throughout — before, during, and after the move — is compared
// against an unsplit single-shard oracle holding the same database, so the
// artifact certifies the migration's bit-identical guarantee under load.
// Latency quantiles per phase quantify the serving cost of migrating: the
// "during" p99 against the quiesced ("before") p99. All time is simulated,
// so BENCH_rebalance.json is byte-identical across runs.

// RebalanceConfig sizes the study.
type RebalanceConfig struct {
	App      string // workload application
	Features int    // materialized database size
	K        int    // top-K
	Seed     int64  // database + model + query seed
	Shards   int    // starting shard count (the move adds one)
	// Batches is the query batches driven per phase; BatchQ the queries per
	// batch (each batch runs through the cluster's shared-sweep path).
	Batches int
	BatchQ  int
	// Universe bounds the distinct query population (smaller ⇒ hotter
	// demand concentration for the planner to find).
	Universe int64
	// StripeFeatures is the heat-ranking granularity; WindowStripes the
	// window width PlanRebalance proposes to move. The migration copies
	// one stripe per Rebalancer.Step, interleaved with the "during"
	// phase's query batches.
	StripeFeatures int64
	WindowStripes  int
}

// DefaultRebalance returns the CI-scale study: a 2-shard cluster grown to 3
// by migrating the hottest 4-stripe window under continuous load.
func DefaultRebalance() RebalanceConfig {
	return RebalanceConfig{
		App: "TIR", Features: 600, K: 10, Seed: 7, Shards: 2,
		Batches: 6, BatchQ: 8, Universe: 32,
		StripeFeatures: 20, WindowStripes: 4,
	}
}

// RebalanceRow is one phase's measured service. Wall-clock time is excluded
// from the JSON artifact so BENCH_rebalance.json is byte-identical across
// runs.
type RebalanceRow struct {
	// Phase is "before" (quiesced, pre-move), "during" (migration chunks
	// interleaved with query batches), or "after" (move complete).
	Phase   string  `json:"phase"`
	Shards  int     `json:"shards"`
	Gen     uint64  `json:"gen"` // routing-table generation at phase end
	Queries int     `json:"queries"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	// P99VsQuiesced is this phase's p99 over the "before" phase's p99 (1.0
	// in the "before" row by construction).
	P99VsQuiesced float64 `json:"p99_vs_quiesced"`
	// Mismatches counts answers differing from the unsplit oracle (the
	// bit-identical guarantee: must be 0 in every phase).
	Mismatches int `json:"mismatches"`
	// MovedFeatures/Chunks/SrcReadMs/DstWriteMs describe the migration
	// (zero in the "before" row; the move completes within "during").
	MovedFeatures int64   `json:"moved_features"`
	Chunks        int     `json:"chunks"`
	SrcReadMs     float64 `json:"src_read_ms"`
	DstWriteMs    float64 `json:"dst_write_ms"`
	WallSec       float64 `json:"-"`
}

// rebalanceCluster builds a cluster holding the study database and model.
func rebalanceCluster(shards int, app *workload.App, db *workload.FeatureDB) (*cluster.Engines, error) {
	e, err := cluster.NewEngines(shards, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		return nil, err
	}
	if err := e.LoadModel(app.SCN); err != nil {
		return nil, err
	}
	return e, nil
}

// drivePhase runs batches through the live cluster and the oracle,
// comparing every merged top-K bit for bit. step, when non-nil, is invoked
// after each batch (the migration interleaving); it reports whether more
// chunks remain.
func drivePhase(
	live, oracle *cluster.Engines, vec func(q int) []float32, k, batches, batchQ int,
	next *int, step func() (bool, error),
) (lat []sim.Duration, mismatches int, err error) {
	for b := 0; b < batches; b++ {
		qfvs := make([][]float32, batchQ)
		for i := range qfvs {
			qfvs[i] = vec(*next)
			*next++
		}
		la, err := live.QueriesShared(qfvs, k)
		if err != nil {
			return nil, 0, fmt.Errorf("exp: rebalance live batch: %w", err)
		}
		oa, err := oracle.QueriesShared(qfvs, k)
		if err != nil {
			return nil, 0, fmt.Errorf("exp: rebalance oracle batch: %w", err)
		}
		for i := range la {
			lat = append(lat, la[i].Makespan)
			// ObjectIDs are physical flash addresses and legitimately differ
			// between placements; the bit-identical guarantee covers the
			// (FeatureID, Score) ranking.
			same := len(la[i].TopK) == len(oa[i].TopK)
			if same {
				for j := range la[i].TopK {
					if la[i].TopK[j].FeatureID != oa[i].TopK[j].FeatureID ||
						la[i].TopK[j].Score != oa[i].TopK[j].Score {
						same = false
						break
					}
				}
			}
			if !same {
				mismatches++
			}
		}
		if step != nil {
			if done, err := step(); err != nil {
				return nil, 0, err
			} else if done {
				step = nil
			}
		}
	}
	// Batches exhausted with chunks still unmoved: finish the migration
	// inside this phase so "after" really is post-move.
	for step != nil {
		if done, err := step(); err != nil {
			return nil, 0, err
		} else if done {
			step = nil
		}
	}
	return lat, mismatches, nil
}

// RebalanceBench runs the online-rebalance study: quiesced baseline, heat
// accumulation, a planner-chosen migration interleaved with live load, and
// the post-move steady state — every answer checked against the unsplit
// oracle.
func RebalanceBench(cfg RebalanceConfig) ([]RebalanceRow, error) {
	if cfg.Features < 1 || cfg.K < 1 || cfg.Shards < 1 || cfg.Batches < 1 || cfg.BatchQ < 1 {
		return nil, fmt.Errorf("exp: rebalance config %+v invalid", cfg)
	}
	if cfg.Universe < 1 || cfg.StripeFeatures < 1 || cfg.WindowStripes < 1 {
		return nil, fmt.Errorf("exp: rebalance config %+v invalid", cfg)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	dims := app.SCN.FeatureElems()
	wallStart := time.Now()

	live, err := rebalanceCluster(cfg.Shards, app, db)
	if err != nil {
		return nil, err
	}
	oracle, err := rebalanceCluster(1, app, db)
	if err != nil {
		return nil, err
	}
	vec := func(q int) []float32 {
		return workload.QueryVector(workload.Query{SemanticID: int64(q) % cfg.Universe}, dims, cfg.Seed+3)
	}

	next := 0
	beforeLat, beforeMis, err := drivePhase(live, oracle, vec, cfg.K, cfg.Batches, cfg.BatchQ, &next, nil)
	if err != nil {
		return nil, err
	}
	beforeP50, beforeP99 := quantiles(beforeLat)
	beforeRow := RebalanceRow{
		Phase: "before", Shards: live.Shards(), Gen: live.Gen(),
		Queries: len(beforeLat), P50Ms: beforeP50.Milliseconds(), P99Ms: beforeP99.Milliseconds(),
		P99VsQuiesced: 1, Mismatches: beforeMis,
	}

	// The "before" phase accumulated the demand profile the planner reads.
	spec, err := live.PlanRebalance(cfg.StripeFeatures, cfg.WindowStripes)
	if err != nil {
		return nil, fmt.Errorf("exp: rebalance plan: %w", err)
	}
	rb, err := cluster.NewRebalancer(live, spec)
	if err != nil {
		return nil, fmt.Errorf("exp: rebalance start: %w", err)
	}
	duringLat, duringMis, err := drivePhase(live, oracle, vec, cfg.K, cfg.Batches, cfg.BatchQ, &next, rb.Step)
	if err != nil {
		rb.Abort()
		return nil, err
	}
	rep := rb.Report()
	duringP50, duringP99 := quantiles(duringLat)
	duringRow := RebalanceRow{
		Phase: "during", Shards: live.Shards(), Gen: live.Gen(),
		Queries: len(duringLat), P50Ms: duringP50.Milliseconds(), P99Ms: duringP99.Milliseconds(),
		Mismatches:    duringMis,
		MovedFeatures: rep.Moved, Chunks: rep.Chunks,
		SrcReadMs: rep.SrcRead.Milliseconds(), DstWriteMs: rep.DstWrite.Milliseconds(),
	}

	afterLat, afterMis, err := drivePhase(live, oracle, vec, cfg.K, cfg.Batches, cfg.BatchQ, &next, nil)
	if err != nil {
		return nil, err
	}
	afterP50, afterP99 := quantiles(afterLat)
	afterRow := RebalanceRow{
		Phase: "after", Shards: live.Shards(), Gen: live.Gen(),
		Queries: len(afterLat), P50Ms: afterP50.Milliseconds(), P99Ms: afterP99.Milliseconds(),
		Mismatches:    afterMis,
		MovedFeatures: rep.Moved, Chunks: rep.Chunks,
		SrcReadMs: rep.SrcRead.Milliseconds(), DstWriteMs: rep.DstWrite.Milliseconds(),
	}
	if beforeP99 > 0 {
		duringRow.P99VsQuiesced = duringP99.Seconds() / beforeP99.Seconds()
		afterRow.P99VsQuiesced = afterP99.Seconds() / beforeP99.Seconds()
	}
	wallSec := time.Since(wallStart).Seconds()
	rows := []RebalanceRow{beforeRow, duringRow, afterRow}
	for i := range rows {
		rows[i].WallSec = wallSec
	}
	return rows, nil
}

// CellsRebalance returns the study as header and rows.
func CellsRebalance(rows []RebalanceRow) ([]string, [][]string) {
	header := []string{"Phase", "Shards", "Gen", "Queries", "p50 (ms)", "p99 (ms)", "p99 vs quiesced",
		"Mismatch", "Moved", "Chunks", "Src read (ms)", "Dst write (ms)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Phase, fmt.Sprint(r.Shards), fmt.Sprint(r.Gen), fmt.Sprint(r.Queries),
			F(r.P50Ms), F(r.P99Ms), F(r.P99VsQuiesced),
			fmt.Sprint(r.Mismatches), fmt.Sprint(r.MovedFeatures), fmt.Sprint(r.Chunks),
			F(r.SrcReadMs), F(r.DstWriteMs),
		})
	}
	return header, out
}

// FormatRebalance renders the study.
func FormatRebalance(rows []RebalanceRow) string {
	return FormatTable(CellsRebalance(rows))
}
