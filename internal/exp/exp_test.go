package exp

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func defaultDev() ssd.Config { return ssd.DefaultConfig() }

// testWindow keeps experiment tests fast; shapes are stable well below the
// default window.
const testWindow = 1000

// TestFigure8ShapeBands is the headline reproduction check: for every
// application the system ordering and rough factors of Figure 8 / Table 4
// hold.
func TestFigure8ShapeBands(t *testing.T) {
	rows, err := Figure8(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Wimpy cores are far slower than the GPU+SSD baseline (§6.2:
		// 4.5-22.8x slower).
		if r.WimpySpeedup >= 0.5 {
			t.Errorf("%s: wimpy speedup %.2f not << 1", r.App, r.WimpySpeedup)
		}
		// SSD-level is slower than the baseline (paper: 0.1-0.6x).
		if s := r.Speedup[accel.LevelSSD]; s >= 1.0 || s < 0.05 {
			t.Errorf("%s: SSD-level speedup %.2f outside (0.05, 1)", r.App, s)
		}
		// Channel level wins for every app (paper: 3.9-17.7x).
		ch := r.Speedup[accel.LevelChannel]
		if ch < 3 || ch > 25 {
			t.Errorf("%s: channel speedup %.2f outside [3, 25]", r.App, ch)
		}
		chip := r.Speedup[accel.LevelChip]
		if r.App == "ReId" {
			if !math.IsNaN(chip) {
				t.Errorf("ReId chip-level speedup %.2f, want unsupported", chip)
			}
		} else {
			// Chip level sits between SSD level and channel level
			// (paper: 1.0-4.6x).
			if chip < 0.5 || chip > 10 {
				t.Errorf("%s: chip speedup %.2f outside [0.5, 10]", r.App, chip)
			}
			if chip >= ch {
				t.Errorf("%s: chip (%.2f) not below channel (%.2f)", r.App, chip, ch)
			}
		}
		// Channel level is 14.8-44.5x better than SSD level (§6.2).
		ratio := ch / r.Speedup[accel.LevelSSD]
		if ratio < 10 || ratio > 70 {
			t.Errorf("%s: channel/SSD ratio %.1f outside [10, 70]", r.App, ratio)
		}
		// Channel level is the most energy-efficient design (§6.4).
		if r.EnergyEff[accel.LevelChannel] <= r.EnergyEff[accel.LevelSSD] {
			t.Errorf("%s: channel energy eff not above SSD level", r.App)
		}
		if !math.IsNaN(r.EnergyEff[accel.LevelChip]) &&
			r.EnergyEff[accel.LevelChannel] <= r.EnergyEff[accel.LevelChip] {
			t.Errorf("%s: channel energy eff not above chip level", r.App)
		}
	}
	// TextQA is the best channel-level case, ReId the worst (Table 4).
	byApp := map[string]Fig8Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if byApp["TextQA"].Speedup[accel.LevelChannel] <= byApp["ReId"].Speedup[accel.LevelChannel] {
		t.Error("TextQA channel speedup not above ReId")
	}
	// Up to ~78.6x energy efficiency, achieved by TextQA at channel level.
	maxEff := 0.0
	for _, r := range rows {
		if e := r.EnergyEff[accel.LevelChannel]; e > maxEff {
			maxEff = e
		}
	}
	if maxEff < 40 || maxEff > 120 {
		t.Errorf("peak channel energy efficiency %.1f outside [40, 120] (paper: 78.6)", maxEff)
	}
}

func TestTable1RowsComplete(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FLOPs <= 0 || r.WeightMB <= 0 || r.Dataset == "" {
			t.Errorf("incomplete row %+v", r)
		}
		if rel := math.Abs(r.FLOPs-r.PaperFLOPs) / r.PaperFLOPs; rel > 0.20 {
			t.Errorf("%s FLOPs off by %.0f%%", r.App, rel*100)
		}
	}
	if FormatTable1(rows) == "" {
		t.Error("empty format")
	}
}

func TestFigure2IOBand(t *testing.T) {
	rows := Figure2()
	if len(rows) != 40 { // 5 apps x 4 batches x 2 GPUs
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.IOFraction < 0.5 || r.IOFraction > 0.95 {
			t.Errorf("%s/%s: IO fraction %.2f outside band", r.App, r.GPU, r.IOFraction)
		}
		if math.Abs(r.TotalMs-(r.ReadMs+r.MemcpyMs+r.ComputeMs)) > 1e-6 {
			t.Errorf("%s: breakdown does not sum", r.App)
		}
	}
}

func TestFigure9Insensitivity(t *testing.T) {
	rows, err := Figure9(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsNaN(r.Speedup) {
			continue // chip-level ReId
		}
		switch r.System {
		case "Traditional":
			if r.Speedup != 1.0 {
				t.Errorf("traditional system sensitive to flash latency: %+v", r)
			}
		case "Channel", "Chip":
			// Paper: within ~10% even at 4x latency; allow 25%.
			if r.Speedup < 0.75 || r.Speedup > 1.25 {
				t.Errorf("%s/%s at %s: speedup %.2f outside [0.75, 1.25]",
					r.System, r.App, r.Ratio, r.Speedup)
			}
		}
	}
}

func TestFigure10Scaling(t *testing.T) {
	a, err := Figure10a(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys string, ch int) float64 {
		for _, r := range a {
			if r.System == sys && r.Channels == ch {
				return r.Speedup
			}
		}
		t.Fatalf("missing %s/%d", sys, ch)
		return 0
	}
	// Channel level scales ~linearly with channels.
	if ratio := get("Channel", 64) / get("Channel", 4); ratio < 8 || ratio > 24 {
		t.Errorf("channel level scaled %.1fx from 4 to 64 channels, want ~16x", ratio)
	}
	// Traditional is flat beyond 8 channels.
	if math.Abs(get("Traditional", 64)-get("Traditional", 8)) > 0.1 {
		t.Error("traditional system not flat across channel counts")
	}
	// SSD level flat (compute bound).
	if r := get("SSD", 64) / get("SSD", 8); r > 1.3 {
		t.Errorf("SSD level scaled %.2fx with channels, want flat", r)
	}

	b, err := Figure10b(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	getB := func(sys string, n int) float64 {
		for _, r := range b {
			if r.System == sys && r.SSDs == n {
				return r.Speedup
			}
		}
		t.Fatalf("missing %s/%d", sys, n)
		return 0
	}
	// DeepStore scales linearly with SSDs; traditional sub-linearly.
	if ratio := getB("Channel", 8) / getB("Channel", 1); ratio < 7.5 || ratio > 8.5 {
		t.Errorf("channel level scaled %.2fx across 8 SSDs, want 8x", ratio)
	}
	tradRatio := getB("Traditional", 8) / getB("Traditional", 1)
	if tradRatio >= 7 || tradRatio <= 1.5 {
		t.Errorf("traditional scaled %.2fx across 8 SSDs, want sub-linear", tradRatio)
	}
}

func TestFigure12FractionsSum(t *testing.T) {
	rows, err := Figure12(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsNaN(r.Compute) {
			continue
		}
		if s := r.Compute + r.Memory + r.Flash; math.Abs(s-1) > 1e-6 {
			t.Errorf("%s/%v fractions sum to %v", r.App, r.Level, s)
		}
	}
	// §6.4: ReId's channel-level energy is flash-dominated.
	for _, r := range rows {
		if r.App == "ReId" && r.Level == accel.LevelChannel {
			if r.Flash < r.Compute || r.Flash < r.Memory {
				t.Errorf("ReId channel energy not flash-dominated: %+v", r)
			}
		}
	}
}

func TestFigure13Trends(t *testing.T) {
	cfg := DefaultQCStudy()
	cfg.TraceLen = 6000
	rows, err := Figure13(testWindow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byDist := map[string][]Fig13Row{}
	for _, r := range rows {
		byDist[r.Dist] = append(byDist[r.Dist], r)
	}
	for dist, rs := range byDist {
		for i := 1; i < len(rs); i++ {
			if rs[i].MissRate > rs[i-1].MissRate+1e-9 {
				t.Errorf("%s: miss rate increased with threshold", dist)
			}
			if rs[i].DeepStoreQC < rs[i-1].DeepStoreQC-1e-9 {
				t.Errorf("%s: DeepStore+QC speedup decreased with threshold", dist)
			}
		}
		last := rs[len(rs)-1]
		// QC must help at a relaxed threshold, and DeepStore+QC must beat
		// plain DeepStore (paper: 25.9x vs 10.7x for Zipfian).
		if last.DeepStoreQC <= last.DeepStore {
			t.Errorf("%s: QC did not improve DeepStore (%.1f vs %.1f)",
				dist, last.DeepStoreQC, last.DeepStore)
		}
		if last.TraditionalQC <= 1.2 {
			t.Errorf("%s: QC barely helped the traditional system (%.2f)", dist, last.TraditionalQC)
		}
	}
	// Zipfian locality beats uniform.
	u := byDist["uniform"][len(byDist["uniform"])-1]
	z := byDist["zipf-0.7"][len(byDist["zipf-0.7"])-1]
	if z.MissRate >= u.MissRate {
		t.Error("zipfian miss rate not below uniform")
	}
}

func TestFigure14Trends(t *testing.T) {
	cfg := DefaultQCStudy()
	cfg.TraceLen = 6000
	rows := Figure14(cfg)
	byDist := map[string][]Fig14Row{}
	for _, r := range rows {
		byDist[r.Dist] = append(byDist[r.Dist], r)
	}
	for dist, rs := range byDist {
		for i := 1; i < len(rs); i++ {
			if rs[i].MissRate > rs[i-1].MissRate+0.02 {
				t.Errorf("%s: miss rate rose with larger cache", dist)
			}
		}
	}
	// Higher skew -> lower miss at every size.
	for i := range byDist["uniform"] {
		u, z7, z8 := byDist["uniform"][i], byDist["zipf-0.7"][i], byDist["zipf-0.8"][i]
		if !(z8.MissRate <= z7.MissRate+0.02 && z7.MissRate <= u.MissRate+0.02) {
			t.Errorf("entries=%d: skew ordering violated (%.2f, %.2f, %.2f)",
				u.Entries, u.MissRate, z7.MissRate, z8.MissRate)
		}
	}
}

func TestTable3Configurations(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.DSE.Feasible {
			t.Errorf("%v: DSE found no feasible design", r.Level)
		}
		// The re-derived design must be within 4x of the Table 3 PE count.
		paperPEs := r.Paper.Rows * r.Paper.Cols
		dsePEs := r.DSE.Config.PEs()
		if dsePEs > 4*paperPEs || dsePEs < paperPEs/4 {
			t.Errorf("%v: DSE chose %d PEs vs Table 3's %d", r.Level, dsePEs, paperPEs)
		}
	}
}

func TestRunScanUnsupportedReported(t *testing.T) {
	reid, _ := workload.ByName("ReId")
	out, err := RunScan(reid, accel.LevelChip, defaultDev(), testWindow)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Unsupported {
		t.Error("chip-level ReId not reported unsupported")
	}
}
