package exp

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Fault sweep. The remote protocol and the sharded cluster both degrade
// gracefully under injected faults (DESIGN.md "Fault model and degraded
// operation"); this experiment quantifies the cost of that resilience on a
// multi-SSD deployment. A fixed query trace replays against a sharded
// Engines cluster at increasing per-shard fault rates, and the simulated
// makespan distribution (p50/p99) shows how much latency the degraded
// answers give back: a failed shard cannot be the slowest shard, so heavy
// fault rates shrink the makespan while shrinking coverage.

// FaultsConfig sizes the sweep.
type FaultsConfig struct {
	Shards   int       // engines in the cluster
	Features int       // materialized database size
	Queries  int       // trace length per rate
	K        int       // top-K
	Seed     int64     // database, trace, and injector seed
	Rates    []float64 // per-shard fault rates to sweep
}

// DefaultFaults returns a laptop-scale configuration: a 4-SSD cluster at
// 0%, 1%, and 10% per-shard fault rates.
func DefaultFaults() FaultsConfig {
	return FaultsConfig{
		Shards:   4,
		Features: 2000,
		Queries:  48,
		K:        10,
		Seed:     7,
		Rates:    []float64{0, 0.01, 0.10},
	}
}

// FaultsRow is one fault rate's outcome.
type FaultsRow struct {
	Rate    float64
	Queries int
	// Degraded counts queries answered from a strict subset of the shards;
	// ShardFailures totals the individual shard faults behind them.
	Degraded      int
	ShardFailures int
	// Errors counts queries with no healthy shard at all (possible only at
	// extreme rates; such queries contribute no latency sample).
	Errors int
	// P50Ms/P99Ms are simulated makespan percentiles in milliseconds over
	// the answered queries.
	P50Ms float64
	P99Ms float64
}

// percentileMs returns the nearest-rank percentile (p in [0,100]) of the
// sorted sample of seconds, in milliseconds. Thin wrapper over obs.Quantile
// (the shared definition; the previous local copy sat one rank high).
func percentileMs(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return obs.Quantile(sorted, float64(p)) * 1000
}

// FaultSweep replays one trace against a fresh sharded cluster per rate.
// Each rate reuses the injector seed, so a rate's failure schedule — and
// therefore every number in its row — is reproducible.
func FaultSweep(cfg FaultsConfig) ([]FaultsRow, error) {
	if cfg.Shards < 1 || cfg.Queries < 1 {
		return nil, fmt.Errorf("exp: fault sweep config %+v invalid", cfg)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe: 64, Length: cfg.Queries, Dist: workload.Zipfian, Alpha: 0.7, Seed: cfg.Seed,
	})
	dims := app.SCN.FeatureElems()
	qfvs := make([][]float32, len(trace.Queries))
	for i, q := range trace.Queries {
		qfvs[i] = workload.QueryVector(q, dims, cfg.Seed)
	}

	var rows []FaultsRow
	for _, rate := range cfg.Rates {
		e, err := cluster.NewEngines(cfg.Shards, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if err := e.WriteDB(db.Vectors); err != nil {
			return nil, err
		}
		if err := e.LoadModel(app.SCN); err != nil {
			return nil, err
		}
		if err := e.SetTolerance(cluster.Tolerance{FaultRate: rate, FaultSeed: cfg.Seed}); err != nil {
			return nil, err
		}
		row := FaultsRow{Rate: rate, Queries: cfg.Queries}
		var lat []float64
		for _, q := range qfvs {
			ans, err := e.Query(q, cfg.K)
			if err != nil {
				row.Errors++
				continue
			}
			lat = append(lat, ans.Makespan.Seconds())
			if ans.Degraded {
				row.Degraded++
				row.ShardFailures += len(ans.FailedShards)
			}
		}
		sort.Float64s(lat)
		row.P50Ms = percentileMs(lat, 50)
		row.P99Ms = percentileMs(lat, 99)
		rows = append(rows, row)
	}
	return rows, nil
}

// CellsFaults returns the sweep as header and rows.
func CellsFaults(rows []FaultsRow) ([]string, [][]string) {
	header := []string{"Fault rate", "Queries", "Degraded", "Shard failures", "Errors", "p50 (ms)", "p99 (ms)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.Rate), fmt.Sprint(r.Queries), fmt.Sprint(r.Degraded),
			fmt.Sprint(r.ShardFailures), fmt.Sprint(r.Errors), F(r.P50Ms), F(r.P99Ms),
		})
	}
	return header, out
}

// FormatFaults renders the sweep.
func FormatFaults(rows []FaultsRow) string {
	return FormatTable(CellsFaults(rows))
}
