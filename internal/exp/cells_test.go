package exp

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/report"
)

func accelChannel() accel.Level { return accel.LevelChannel }

// TestAllCellsFeedValidTables: every Cells* export must produce a header and
// rows that pass the report.Table structural validation, so CSV/Markdown
// export can never emit ragged data.
func TestAllCellsFeedValidTables(t *testing.T) {
	check := func(name string, header []string, rows [][]string) {
		t.Helper()
		tb := report.Table{Name: name, Header: header, Rows: rows}
		if err := tb.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		if _, err := tb.CSV(); err != nil {
			t.Errorf("%s csv: %v", name, err)
		}
		if _, err := tb.Markdown(); err != nil {
			t.Errorf("%s md: %v", name, err)
		}
	}

	h, c := CellsTable1(Table1())
	check("table1", h, c)

	h, c = CellsFigure2(Figure2())
	check("fig2", h, c)

	h, c = CellsFigure6(Figure6())
	check("fig6", h, c)

	h, c = CellsTable3(Table3())
	check("table3", h, c)

	rows8, err := Figure8(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure8(rows8)
	check("fig8", h, c)
	h, c = CellsFigure11(Figure11(rows8))
	check("fig11", h, c)

	rows12, err := Figure12(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure12(rows12)
	check("fig12", h, c)

	cfg := DefaultQCStudy()
	cfg.TraceLen = 2000
	rows13, err := Figure13(testWindow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure13(rows13)
	check("fig13", h, c)

	h, c = CellsFigure14(Figure14(cfg))
	check("fig14", h, c)

	a10, err := Figure10a(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure10a(a10)
	check("fig10a", h, c)
	b10, err := Figure10b(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure10b(b10)
	check("fig10b", h, c)

	rows9, err := Figure9(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsFigure9(rows9)
	check("fig9", h, c)

	tp, err := Throughput(testWindow, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsThroughput(tp)
	check("throughput", h, c)

	intf, err := Interference("TextQA", accelChannel(), 16_000, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsInterference([]InterferenceResult{intf})
	check("interference", h, c)

	l2, err := AblationL2(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	h, c = CellsAblationL2(l2)
	check("ablation-l2", h, c)
}
