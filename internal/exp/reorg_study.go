package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/reorg"
	"repro/internal/topk"
	"repro/internal/workload"
)

// Feature-reorganization study (§7's pointer): cluster the feature database
// offline, store it cluster-contiguously, and scan only the top-m clusters
// by centroid similarity. Speedup is the inverse of the scanned fraction
// (the scan is bandwidth/compute-proportional); the cost is recall against
// the full scan.

// ReorgRow is one pruning point.
type ReorgRow struct {
	ClustersScanned int
	Fraction        float64 // of the database scanned
	Speedup         float64 // 1/Fraction
	MeanRecall      float64 // |prunedTopK ∩ fullTopK| / K over all queries
}

// ReorgConfig sizes the study.
type ReorgConfig struct {
	Features int
	Clusters int
	Queries  int
	K        int
	Seed     int64
}

// DefaultReorg returns a laptop-scale configuration.
func DefaultReorg() ReorgConfig {
	return ReorgConfig{Features: 4000, Clusters: 32, Queries: 60, K: 10, Seed: 7}
}

// ReorgStudy builds a clustered corpus with planted relevance (as in the
// recall study) and sweeps the scanned-cluster budget.
func ReorgStudy(cfg ReorgConfig) ([]ReorgRow, error) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	fe := app.SCN.FeatureElems()
	scn, err := dotNet("reorg-scn", fe)
	if err != nil {
		return nil, err
	}

	// Corpus: intents with planted relevant items plus background.
	const intents = 40
	intentVecs := make([][]float32, intents)
	for i := range intentVecs {
		intentVecs[i] = workload.NewFeatureDB(app, 1, cfg.Seed+100+int64(i)).Vectors[0]
	}
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	planted := workload.NewFeatureDB(app, intents*15, cfg.Seed+500)
	for i := 0; i < intents; i++ {
		for r := 0; r < 15; r++ {
			idx := i*15 + r
			if idx >= len(db.Vectors) {
				break
			}
			for j := 0; j < fe; j++ {
				db.Vectors[idx][j] = intentVecs[i][j] + 0.15*planted.Vectors[idx][j]
			}
		}
	}

	cl, err := reorg.KMeans(db.Vectors, cfg.Clusters, 15, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	host := baseline.HostScan{Net: scn}

	noise := workload.NewFeatureDB(app, cfg.Queries, cfg.Seed+999)
	queries := make([][]float32, cfg.Queries)
	for qi := range queries {
		base := intentVecs[qi%intents]
		v := make([]float32, fe)
		for j := range v {
			v[j] = base[j] + 0.02*noise.Vectors[qi][j]
		}
		queries[qi] = v
	}

	// Ground truth per query.
	truths := make([]map[int64]bool, cfg.Queries)
	for qi, q := range queries {
		full, err := host.TopK(q, db.Vectors, cfg.K)
		if err != nil {
			return nil, err
		}
		set := map[int64]bool{}
		for _, e := range full {
			set[e.FeatureID] = true
		}
		truths[qi] = set
	}

	var rows []ReorgRow
	for _, m := range []int{1, 2, 4, 8, 16, cfg.Clusters} {
		if m > cfg.Clusters {
			continue
		}
		var fracSum, recallSum float64
		for qi, q := range queries {
			ranked := cl.RankClusters(func(cent []float32) float32 {
				return scn.Score(q, cent)
			})
			cand, frac := cl.Candidates(ranked, m)
			fracSum += frac
			pruned := topk.New(cfg.K)
			for _, i := range cand {
				pruned.Offer(topk.Entry{FeatureID: int64(i), Score: scn.Score(q, db.Vectors[i])})
			}
			overlap := 0
			for _, e := range pruned.Results() {
				if truths[qi][e.FeatureID] {
					overlap++
				}
			}
			recallSum += float64(overlap) / float64(cfg.K)
		}
		frac := fracSum / float64(cfg.Queries)
		rows = append(rows, ReorgRow{
			ClustersScanned: m,
			Fraction:        frac,
			Speedup:         1 / frac,
			MeanRecall:      recallSum / float64(cfg.Queries),
		})
	}
	return rows, nil
}

// CellsReorg returns the study as header and rows.
func CellsReorg(rows []ReorgRow) ([]string, [][]string) {
	header := []string{"Clusters scanned", "DB fraction", "Scan speedup", "Recall@K"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.ClustersScanned), F(r.Fraction), F(r.Speedup), F(r.MeanRecall),
		})
	}
	return header, out
}

// FormatReorg renders the study.
func FormatReorg(rows []ReorgRow) string {
	return FormatTable(CellsReorg(rows))
}
