// Package qhist is the persistent query-history store. Every query the
// engine answers is recorded in a hot/cold layout: a compact fixed-width
// metadata record (hot, always resident, cheap to mine) plus a variable-
// length payload holding the full query vector and top-K result (cold,
// touched only on prefetch or audit). The store serializes to a single
// checksummed image that rides inside the FTL metadata snapshot, so history
// survives engine restarts; mining the records yields the statistics that
// drive learned cache admission, prefetch, and heat-directed placement.
package qhist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/topk"
)

// ErrCorrupt reports that a persisted history image (or payload) failed
// validation. Callers must treat it as "history unavailable" and degrade to
// cold-start behavior; it never indicates in-memory state damage.
var ErrCorrupt = errors.New("qhist: corrupt history image")

// RecordBytes is the fixed hot-record width: 12 little-endian 64-bit words.
const RecordBytes = 96

// FlagHit marks a query answered from the query cache.
const FlagHit uint32 = 1 << 0

// Record is one fixed-width hot history entry. All fields are plain values
// so a []Record mines with zero pointer chasing; the payload lives in the
// cold region addressed by PayloadOff/PayloadLen.
type Record struct {
	Seq        uint64 // dense append sequence number, assigned by Append
	Time       int64  // simulated completion timestamp, picoseconds
	DB         uint64 // database the query scanned
	Model      uint64 // SCN model used
	Group      uint64 // coarse query-group fingerprint (GroupOf)
	K          uint32 // requested top-K
	Flags      uint32 // FlagHit et al.
	Latency    int64  // total simulated latency, picoseconds
	TopFeature int64  // best-scoring feature index, -1 when empty
	Digest     uint64 // FNV-1a digest of the top-K list
	PayloadOff int64  // cold-region byte offset, assigned by Append
	PayloadLen int64  // cold payload length in bytes
}

// Hit reports whether the record was served from the query cache.
func (r Record) Hit() bool { return r.Flags&FlagHit != 0 }

func (r Record) marshal(b []byte) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], r.Seq)
	le.PutUint64(b[8:], uint64(r.Time))
	le.PutUint64(b[16:], r.DB)
	le.PutUint64(b[24:], r.Model)
	le.PutUint64(b[32:], r.Group)
	le.PutUint32(b[40:], r.K)
	le.PutUint32(b[44:], r.Flags)
	le.PutUint64(b[48:], uint64(r.Latency))
	le.PutUint64(b[56:], uint64(r.TopFeature))
	le.PutUint64(b[64:], r.Digest)
	le.PutUint64(b[72:], uint64(r.PayloadOff))
	le.PutUint64(b[80:], uint64(r.PayloadLen))
	le.PutUint64(b[88:], 0) // reserved
}

func unmarshalRecord(b []byte) Record {
	le := binary.LittleEndian
	return Record{
		Seq:        le.Uint64(b[0:]),
		Time:       int64(le.Uint64(b[8:])),
		DB:         le.Uint64(b[16:]),
		Model:      le.Uint64(b[24:]),
		Group:      le.Uint64(b[32:]),
		K:          le.Uint32(b[40:]),
		Flags:      le.Uint32(b[44:]),
		Latency:    int64(le.Uint64(b[48:])),
		TopFeature: int64(le.Uint64(b[56:])),
		Digest:     le.Uint64(b[64:]),
		PayloadOff: int64(le.Uint64(b[72:])),
		PayloadLen: int64(le.Uint64(b[80:])),
	}
}

// Store holds the hot record array and the cold payload heap. It is not
// internally synchronized: the owning engine serializes access under its
// own lock.
type Store struct {
	records []Record
	payload []byte
}

// NewStore returns an empty history store.
func NewStore() *Store { return &Store{} }

// Append assigns the record's Seq and payload placement, stores it, and
// returns the completed record.
func (s *Store) Append(r Record, payload []byte) Record {
	r.Seq = uint64(len(s.records))
	r.PayloadOff = int64(len(s.payload))
	r.PayloadLen = int64(len(payload))
	s.payload = append(s.payload, payload...)
	s.records = append(s.records, r)
	return r
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// NextSeq returns the sequence number the next Append will receive; mining
// uses it as the current logical "now" for recency decay.
func (s *Store) NextSeq() uint64 { return uint64(len(s.records)) }

// Records returns the live hot-record slice. Callers must not mutate it and
// must not retain it across Appends.
func (s *Store) Records() []Record { return s.records }

// HotBytes and ColdBytes report the two regions' sizes.
func (s *Store) HotBytes() int64  { return int64(len(s.records)) * RecordBytes }
func (s *Store) ColdBytes() int64 { return int64(len(s.payload)) }

// Payload returns the cold payload bytes for r (a view into the heap).
func (s *Store) Payload(r Record) ([]byte, error) {
	if r.PayloadOff < 0 || r.PayloadLen < 0 || r.PayloadOff+r.PayloadLen > int64(len(s.payload)) {
		return nil, fmt.Errorf("%w: payload [%d,+%d) outside %d-byte heap",
			ErrCorrupt, r.PayloadOff, r.PayloadLen, len(s.payload))
	}
	return s.payload[r.PayloadOff : r.PayloadOff+r.PayloadLen], nil
}

const (
	snapshotMagic   = "DSQH"
	snapshotVersion = 1
)

// Snapshot serializes the store: magic, version, the hot region, the cold
// region, and a trailing FNV-1a checksum over everything before it. The
// encoding is fully deterministic for a given sequence of Appends.
func (s *Store) Snapshot() []byte {
	le := binary.LittleEndian
	size := 4 + 4 + 8 + len(s.records)*RecordBytes + 8 + len(s.payload) + 8
	out := make([]byte, size)
	copy(out, snapshotMagic)
	le.PutUint32(out[4:], snapshotVersion)
	le.PutUint64(out[8:], uint64(len(s.records)))
	off := 16
	for i := range s.records {
		s.records[i].marshal(out[off:])
		off += RecordBytes
	}
	le.PutUint64(out[off:], uint64(len(s.payload)))
	off += 8
	copy(out[off:], s.payload)
	off += len(s.payload)
	h := fnv.New64a()
	h.Write(out[:off])
	le.PutUint64(out[off:], h.Sum64())
	return out
}

// Restore parses a Snapshot image. Any framing, bounds, or checksum failure
// returns an error wrapping ErrCorrupt — never a panic — so callers can
// degrade to an empty (cold-start) history.
func Restore(data []byte) (*Store, error) {
	le := binary.LittleEndian
	if len(data) < 24 {
		return nil, fmt.Errorf("%w: %d-byte image too short", ErrCorrupt, len(data))
	}
	if string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := le.Uint32(data[4:]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count := le.Uint64(data[8:])
	if count > uint64(len(data))/RecordBytes {
		return nil, fmt.Errorf("%w: %d records cannot fit %d bytes", ErrCorrupt, count, len(data))
	}
	off := uint64(16)
	need := off + count*RecordBytes + 8
	if uint64(len(data)) < need {
		return nil, fmt.Errorf("%w: truncated hot region", ErrCorrupt)
	}
	st := &Store{records: make([]Record, count)}
	for i := uint64(0); i < count; i++ {
		st.records[i] = unmarshalRecord(data[off:])
		off += RecordBytes
	}
	plen := le.Uint64(data[off:])
	off += 8
	if uint64(len(data)) < off+plen+8 {
		return nil, fmt.Errorf("%w: truncated cold region", ErrCorrupt)
	}
	st.payload = append([]byte(nil), data[off:off+plen]...)
	off += plen
	h := fnv.New64a()
	h.Write(data[:off])
	if got, want := le.Uint64(data[off:]), h.Sum64(); got != want {
		return nil, fmt.Errorf("%w: checksum %#x != %#x", ErrCorrupt, got, want)
	}
	for i, r := range st.records {
		if r.Seq != uint64(i) {
			return nil, fmt.Errorf("%w: record %d has seq %d", ErrCorrupt, i, r.Seq)
		}
		if r.PayloadOff < 0 || r.PayloadLen < 0 || r.PayloadOff+r.PayloadLen > int64(plen) {
			return nil, fmt.Errorf("%w: record %d payload out of bounds", ErrCorrupt, i)
		}
	}
	return st, nil
}

// EncodePayload serializes a query's cold payload: the full query feature
// vector plus the top-K result list.
func EncodePayload(qfv []float32, topK []topk.Entry) []byte {
	le := binary.LittleEndian
	out := make([]byte, 4+4*len(qfv)+4+20*len(topK))
	le.PutUint32(out, uint32(len(qfv)))
	off := 4
	for _, v := range qfv {
		le.PutUint32(out[off:], math.Float32bits(v))
		off += 4
	}
	le.PutUint32(out[off:], uint32(len(topK)))
	off += 4
	for _, e := range topK {
		le.PutUint64(out[off:], uint64(e.FeatureID))
		le.PutUint32(out[off+8:], math.Float32bits(e.Score))
		le.PutUint64(out[off+12:], e.ObjectID)
		off += 20
	}
	return out
}

// DecodePayload reverses EncodePayload; malformed input wraps ErrCorrupt.
func DecodePayload(p []byte) (qfv []float32, topK []topk.Entry, err error) {
	le := binary.LittleEndian
	if len(p) < 8 {
		return nil, nil, fmt.Errorf("%w: %d-byte payload too short", ErrCorrupt, len(p))
	}
	dims := le.Uint32(p)
	off := uint32(4)
	if uint32(len(p)) < off+4*dims+4 {
		return nil, nil, fmt.Errorf("%w: payload truncated before vector end", ErrCorrupt)
	}
	qfv = make([]float32, dims)
	for i := range qfv {
		qfv[i] = math.Float32frombits(le.Uint32(p[off:]))
		off += 4
	}
	k := le.Uint32(p[off:])
	off += 4
	if uint32(len(p)) != off+20*k {
		return nil, nil, fmt.Errorf("%w: payload length %d != expected %d", ErrCorrupt, len(p), off+20*k)
	}
	topK = make([]topk.Entry, k)
	for i := range topK {
		topK[i] = topk.Entry{
			FeatureID: int64(le.Uint64(p[off:])),
			Score:     math.Float32frombits(le.Uint32(p[off+8:])),
			ObjectID:  le.Uint64(p[off+12:]),
		}
		off += 20
	}
	return qfv, topK, nil
}

// Digest fingerprints a top-K list (FNV-1a over the serialized entries), so
// outcome equality can be checked from hot records alone.
func Digest(topK []topk.Entry) uint64 {
	h := fnv.New64a()
	var b [20]byte
	le := binary.LittleEndian
	for _, e := range topK {
		le.PutUint64(b[0:], uint64(e.FeatureID))
		le.PutUint32(b[8:], math.Float32bits(e.Score))
		le.PutUint64(b[12:], e.ObjectID)
		h.Write(b[:])
	}
	return h.Sum64()
}

// groupBin quantizes one vector element into a coarse bin (width 0.25) so
// that small jitter usually lands repeats of the same semantic query in the
// same group.
func groupBin(v float32) int32 {
	return int32(math.Round(float64(v) * 4))
}

// GroupOf fingerprints a query vector into its history group: FNV-1a over
// the coarsely quantized dimensions. Deterministic; identical vectors always
// share a group.
func GroupOf(qfv []float32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range qfv {
		binary.LittleEndian.PutUint32(b[:], uint32(groupBin(v)))
		h.Write(b[:])
	}
	return h.Sum64()
}

// GroupStat aggregates one query group's history.
type GroupStat struct {
	Count   int64  // total queries observed in the group
	Hits    int64  // of those, cache hits
	LastSeq uint64 // most recent record's sequence number
	LastRec int    // index of the most recent record (for payload lookup)
}

// DefaultHalfLifeRecords is the recency half-life used by AdmissionScore,
// measured in appended records: a group unseen for this many records loses
// half its weight. Sequence distance (not wall time) keeps the score
// independent of device speed.
const DefaultHalfLifeRecords = 256

// AdmissionScore combines frequency (the group's observed count), recency
// (exponential decay over sequence distance), and the group's observed
// cache accuracy (Laplace-smoothed hit ratio, the per-cluster QCN accuracy
// mined from history). Higher scores deserve cache residency more.
func (g GroupStat) AdmissionScore(nowSeq uint64) float64 {
	if g.Count <= 0 {
		return 0
	}
	age := float64(0)
	if nowSeq > g.LastSeq {
		age = float64(nowSeq - g.LastSeq - 1)
	}
	decay := math.Exp2(-age / DefaultHalfLifeRecords)
	accuracy := float64(g.Hits+1) / float64(g.Count+2)
	return float64(g.Count) * decay * accuracy
}

// MineGroups folds the hot records into per-group statistics. Pure function
// of the record slice, so identical histories always mine to identical
// admission decisions.
func MineGroups(records []Record) map[uint64]GroupStat {
	out := make(map[uint64]GroupStat, 16)
	for i, r := range records {
		g := out[r.Group]
		g.Count++
		if r.Hit() {
			g.Hits++
		}
		g.LastSeq = r.Seq
		g.LastRec = i
		out[r.Group] = g
	}
	return out
}

// RankGroups orders mined groups by descending admission score, breaking
// ties by ascending group id for determinism.
func RankGroups(mined map[uint64]GroupStat, nowSeq uint64) []uint64 {
	ids := make([]uint64, 0, len(mined))
	for id := range mined {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := mined[ids[i]].AdmissionScore(nowSeq), mined[ids[j]].AdmissionScore(nowSeq)
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// FeatureHeat folds the hot records into a per-feature demand vector for
// one database: each record votes for its top-scoring feature. The result
// feeds reorg.StripeHeat for heat-directed placement.
func FeatureHeat(records []Record, db uint64, features int64) []int64 {
	heat := make([]int64, features)
	for _, r := range records {
		if r.DB == db && r.TopFeature >= 0 && r.TopFeature < features {
			heat[r.TopFeature]++
		}
	}
	return heat
}
