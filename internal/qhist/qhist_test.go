package qhist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/topk"
)

func randStore(seed int64, n int) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := NewStore()
	for i := 0; i < n; i++ {
		qfv := make([]float32, 8)
		for d := range qfv {
			qfv[d] = rng.Float32()*2 - 1
		}
		tk := make([]topk.Entry, rng.Intn(4))
		for j := range tk {
			tk[j] = topk.Entry{FeatureID: rng.Int63n(100), Score: rng.Float32(), ObjectID: rng.Uint64()}
		}
		top := int64(-1)
		if len(tk) > 0 {
			top = tk[0].FeatureID
		}
		flags := uint32(0)
		if rng.Intn(2) == 0 {
			flags = FlagHit
		}
		s.Append(Record{
			Time: rng.Int63(), DB: rng.Uint64() % 4, Model: 1,
			Group: GroupOf(qfv), K: uint32(len(tk)), Flags: flags,
			Latency: rng.Int63n(1e9), TopFeature: top, Digest: Digest(tk),
		}, EncodePayload(qfv, tk))
	}
	return s
}

func TestAppendAssignsSeqAndPayload(t *testing.T) {
	s := NewStore()
	r1 := s.Append(Record{Group: 7}, []byte{1, 2, 3})
	r2 := s.Append(Record{Group: 8}, []byte{4})
	if r1.Seq != 0 || r2.Seq != 1 {
		t.Fatalf("seqs %d,%d", r1.Seq, r2.Seq)
	}
	if r2.PayloadOff != 3 || r2.PayloadLen != 1 {
		t.Fatalf("payload placement %d+%d", r2.PayloadOff, r2.PayloadLen)
	}
	if s.HotBytes() != 2*RecordBytes || s.ColdBytes() != 4 {
		t.Fatalf("sizes hot=%d cold=%d", s.HotBytes(), s.ColdBytes())
	}
	p, err := s.Payload(r1)
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("payload %v err %v", p, err)
	}
	if _, err := s.Payload(Record{PayloadOff: 2, PayloadLen: 100}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-bounds payload: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randStore(seed, 40)
		img := s.Snapshot()
		if !bytes.Equal(img, s.Snapshot()) {
			t.Fatal("snapshot not deterministic")
		}
		got, err := Restore(img)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Len() != s.Len() || !bytes.Equal(got.Snapshot(), img) {
			t.Fatalf("seed %d: round trip diverged", seed)
		}
		for i, r := range s.Records() {
			if got.Records()[i] != r {
				t.Fatalf("seed %d: record %d diverged", seed, i)
			}
		}
	}
}

func TestRestoreEmptyStore(t *testing.T) {
	got, err := Restore(NewStore().Snapshot())
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v len %d", err, got.Len())
	}
}

// Every corruption — bit flips anywhere, truncation to any length — must
// come back as ErrCorrupt, never a panic or a silently wrong store.
func TestRestoreCorruptionTyped(t *testing.T) {
	img := randStore(3, 12).Snapshot()
	for off := 0; off < len(img); off += 7 {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x40
		if st, err := Restore(bad); err == nil {
			// A flip confined to reserved padding cannot be detected by
			// field validation alone... but the checksum covers every byte.
			t.Fatalf("flip at %d accepted (len %d)", off, st.Len())
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
	for cut := 0; cut < len(img); cut += 11 {
		if _, err := Restore(img[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: %v", cut, err)
		}
	}
	if _, err := Restore(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil image: %v", err)
	}
}

func TestPayloadCodec(t *testing.T) {
	qfv := []float32{0.5, -1.25, 3}
	tk := []topk.Entry{{FeatureID: 9, Score: 0.75, ObjectID: 42}, {FeatureID: 1, Score: 0.5, ObjectID: 7}}
	p := EncodePayload(qfv, tk)
	gq, gk, err := DecodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(gq) != len(qfv) || gq[1] != qfv[1] || len(gk) != 2 || gk[0] != tk[0] || gk[1] != tk[1] {
		t.Fatalf("decoded %v %v", gq, gk)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, _, err := DecodePayload(p[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated payload %d: %v", cut, err)
		}
	}
}

func TestGroupOfStability(t *testing.T) {
	a := []float32{0.5, 0.25, -0.75}
	b := append([]float32(nil), a...)
	if GroupOf(a) != GroupOf(b) {
		t.Fatal("identical vectors in different groups")
	}
	// Small jitter within a bin keeps the group; a large move changes it.
	c := []float32{0.52, 0.27, -0.73}
	if GroupOf(a) != GroupOf(c) {
		t.Fatal("in-bin jitter changed group")
	}
	d := []float32{1.5, 0.25, -0.75}
	if GroupOf(a) == GroupOf(d) {
		t.Fatal("distinct vectors collided")
	}
}

func TestMineGroupsAndScore(t *testing.T) {
	s := NewStore()
	qa := []float32{1, 0}
	qb := []float32{0, 1}
	for i := 0; i < 6; i++ {
		flags := uint32(0)
		if i%2 == 0 {
			flags = FlagHit
		}
		s.Append(Record{Group: GroupOf(qa), Flags: flags}, nil)
	}
	s.Append(Record{Group: GroupOf(qb)}, nil)
	mined := MineGroups(s.Records())
	ga, gb := mined[GroupOf(qa)], mined[GroupOf(qb)]
	if ga.Count != 6 || ga.Hits != 3 || gb.Count != 1 || gb.Hits != 0 {
		t.Fatalf("mined %+v %+v", ga, gb)
	}
	if ga.LastSeq != 5 || gb.LastRec != 6 {
		t.Fatalf("recency %+v %+v", ga, gb)
	}
	now := s.NextSeq()
	if ga.AdmissionScore(now) <= gb.AdmissionScore(now) {
		t.Fatal("frequent group scored below singleton")
	}
	if (GroupStat{}).AdmissionScore(now) != 0 {
		t.Fatal("empty stat must score zero")
	}
	ranked := RankGroups(mined, now)
	if len(ranked) != 2 || ranked[0] != GroupOf(qa) {
		t.Fatalf("ranked %v", ranked)
	}
}

// Recency decay: two groups with equal counts and hit ratios, one long
// stale — the fresh one must outscore it.
func TestAdmissionScoreRecency(t *testing.T) {
	s := NewStore()
	for i := 0; i < 4; i++ {
		s.Append(Record{Group: 1}, nil)
	}
	for i := 0; i < DefaultHalfLifeRecords*3; i++ {
		s.Append(Record{Group: 2}, nil)
	}
	mined := MineGroups(s.Records())
	now := s.NextSeq()
	if mined[1].AdmissionScore(now) >= mined[2].AdmissionScore(now)/4 {
		t.Fatalf("stale group not decayed: %v vs %v",
			mined[1].AdmissionScore(now), mined[2].AdmissionScore(now))
	}
}

func TestFeatureHeat(t *testing.T) {
	s := NewStore()
	s.Append(Record{DB: 1, TopFeature: 3}, nil)
	s.Append(Record{DB: 1, TopFeature: 3}, nil)
	s.Append(Record{DB: 1, TopFeature: 0}, nil)
	s.Append(Record{DB: 2, TopFeature: 1}, nil)  // other DB
	s.Append(Record{DB: 1, TopFeature: -1}, nil) // cache hit, no scan
	s.Append(Record{DB: 1, TopFeature: 99}, nil) // out of range
	heat := FeatureHeat(s.Records(), 1, 4)
	want := []int64{1, 0, 0, 2}
	for i := range want {
		if heat[i] != want[i] {
			t.Fatalf("heat %v, want %v", heat, want)
		}
	}
}

func TestDigestDiscriminates(t *testing.T) {
	a := []topk.Entry{{FeatureID: 1, Score: 0.5, ObjectID: 2}}
	b := []topk.Entry{{FeatureID: 1, Score: 0.5, ObjectID: 3}}
	if Digest(a) == Digest(b) || Digest(nil) == Digest(a) {
		t.Fatal("digest collisions")
	}
	if Digest(a) != Digest(append([]topk.Entry(nil), a...)) {
		t.Fatal("digest not deterministic")
	}
}
