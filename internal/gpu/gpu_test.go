package gpu

import (
	"testing"

	"repro/internal/workload"
)

func TestModelsValid(t *testing.T) {
	for _, m := range []Model{Pascal(), Volta()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

// TestVoltaFasterThanPascal reproduces the §3 observation: Volta runs the
// compute-intensive SCN layers ~33% faster than Pascal.
func TestVoltaFasterThanPascal(t *testing.T) {
	for _, a := range workload.Apps() {
		plan := a.SCN.LayerPlan()
		tp := Pascal().BatchComputeTime(plan, a.DefaultBatch)
		tv := Volta().BatchComputeTime(plan, a.DefaultBatch)
		if tv >= tp {
			t.Errorf("%s: Volta (%.4g s) not faster than Pascal (%.4g s)", a.Name, tv, tp)
		}
		speedup := tp / tv
		if speedup < 1.05 || speedup > 1.6 {
			t.Errorf("%s: Volta speedup = %.2fx, want ~1.2-1.35x band", a.Name, speedup)
		}
	}
}

func TestBatchComputeScalesWithBatch(t *testing.T) {
	a, _ := workload.ByName("TIR")
	plan := a.SCN.LayerPlan()
	m := Volta()
	t1 := m.BatchComputeTime(plan, 1000)
	t2 := m.BatchComputeTime(plan, 2000)
	if t2 <= t1 {
		t.Errorf("doubling batch did not increase time: %v vs %v", t1, t2)
	}
	if t2 > 2.2*t1 {
		t.Errorf("compute grew superlinearly: %v vs %v", t1, t2)
	}
}

func TestBatchComputePanicsOnBadInput(t *testing.T) {
	a, _ := workload.ByName("TIR")
	defer func() {
		if recover() == nil {
			t.Error("batch 0 did not panic")
		}
	}()
	Volta().BatchComputeTime(a.SCN.LayerPlan(), 0)
}

func TestH2DTime(t *testing.T) {
	m := Volta()
	if got := m.H2DTime(12e9); got < 0.99 || got > 1.01 {
		t.Errorf("12 GB over 12 GB/s = %v s, want 1", got)
	}
}

func TestAvgPower(t *testing.T) {
	m := Volta()
	if p := m.AvgPowerW(); p <= 0 || p > m.BoardPowerW {
		t.Errorf("avg power = %v", p)
	}
}

// TestSmallLayersMemoryBound: TextQA's tiny FC layer must be memory-bound on
// the GPU (the reason wimpy compute is nowhere near enough but a GPU is
// still underutilized).
func TestSmallLayersMemoryBound(t *testing.T) {
	a, _ := workload.ByName("TextQA")
	m := Volta()
	batch := a.DefaultBatch
	tm := m.BatchComputeTime(a.SCN.LayerPlan(), batch)
	var flops float64
	for _, d := range a.SCN.LayerPlan() {
		flops += float64(d.FLOPs)
	}
	idealCompute := flops * float64(batch) / m.PeakFLOPs
	if tm < 1.5*idealCompute {
		t.Errorf("TextQA not memory/launch bound: %v vs ideal %v", tm, idealCompute)
	}
}
