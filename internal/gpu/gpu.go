// Package gpu models the discrete GPUs of the baseline system (§3): NVIDIA
// Titan Xp (Pascal) and Titan V (Volta). Similarity-comparison batches are
// costed with a roofline over peak FP32 throughput and memory bandwidth,
// plus a per-kernel launch overhead — the first-order behaviour that makes
// the small FC layers of intelligent queries memory-bound on GPUs.
package gpu

import (
	"fmt"

	"repro/internal/nn"
)

// Model describes one GPU.
type Model struct {
	Name string
	// PeakFLOPs is peak FP32 throughput in FLOP/s.
	PeakFLOPs float64
	// MemBandwidth is device memory bandwidth in bytes/s.
	MemBandwidth float64
	// BoardPowerW is the TDP; AvgPowerFactor scales it to the nvidia-smi
	// style average draw during the I/O-heavy query workloads.
	BoardPowerW    float64
	AvgPowerFactor float64
	// LaunchOverheadSec is the per-kernel launch + sync cost.
	LaunchOverheadSec float64
	// H2DBandwidth is the effective host-to-device PCIe copy bandwidth.
	H2DBandwidth float64
}

// Pascal returns the Titan Xp model used in §3.
func Pascal() Model {
	return Model{
		Name:              "Titan Xp (Pascal)",
		PeakFLOPs:         12.15e12,
		MemBandwidth:      547e9,
		BoardPowerW:       250,
		AvgPowerFactor:    0.8,
		LaunchOverheadSec: 10e-6,
		H2DBandwidth:      12e9,
	}
}

// Volta returns the Titan V model used in §3 and §6.
func Volta() Model {
	return Model{
		Name:              "Titan V (Volta)",
		PeakFLOPs:         14.9e12,
		MemBandwidth:      653e9,
		BoardPowerW:       250,
		AvgPowerFactor:    0.8,
		LaunchOverheadSec: 10e-6,
		H2DBandwidth:      12e9,
	}
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.PeakFLOPs <= 0 || m.MemBandwidth <= 0 || m.H2DBandwidth <= 0 {
		return fmt.Errorf("gpu: non-positive throughput in %+v", m)
	}
	if m.BoardPowerW <= 0 || m.AvgPowerFactor <= 0 || m.AvgPowerFactor > 1 {
		return fmt.Errorf("gpu: invalid power model in %+v", m)
	}
	if m.LaunchOverheadSec < 0 {
		return fmt.Errorf("gpu: negative launch overhead")
	}
	return nil
}

// BatchComputeTime returns the SCN execution time for a batch of comparisons
// against one query: each layer is a batched GEMM costed at
// max(FLOP/peak, bytes/bandwidth) plus one launch overhead per layer.
func (m Model) BatchComputeTime(plan []nn.LayerDims, batch int) float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("gpu: batch %d invalid", batch))
	}
	b := float64(batch)
	var total float64
	for _, d := range plan {
		flops := float64(d.FLOPs) * b
		var bytes float64
		switch d.Kind {
		case nn.KindElementwise:
			// Two operand streams and one output stream.
			bytes = 3 * 4 * float64(d.In.Elems()) * b
		default:
			// Batched GEMM: activations in/out per item, weights once.
			bytes = 4 * (b*float64(d.In.Elems()) + b*float64(d.Out.Elems()) + float64(d.Weights))
		}
		t := flops / m.PeakFLOPs
		if mt := bytes / m.MemBandwidth; mt > t {
			t = mt
		}
		total += t + m.LaunchOverheadSec
	}
	return total
}

// H2DTime returns the host-to-device copy time for n bytes.
func (m Model) H2DTime(bytes int64) float64 {
	return float64(bytes) / m.H2DBandwidth
}

// AvgPowerW returns the modeled average power draw under query workloads.
func (m Model) AvgPowerW() float64 { return m.BoardPowerW * m.AvgPowerFactor }
