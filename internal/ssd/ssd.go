// Package ssd assembles the simulated solid-state drive: the flash array,
// the block-level FTL, controller DRAM, the embedded cores, and the external
// (PCIe) interface (§2.2). DeepStore's accelerators attach to this device at
// the SSD, channel, or chip level (Fig. 3).
package ssd

import (
	"fmt"
	"strconv"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config describes the device. Defaults follow §6.1: a 1 TB, 32-channel SSD
// with 3.2 GB/s measured external bandwidth, 20 GB/s controller DRAM, and a
// 55 W power budget left for in-storage accelerators under the 75 W PCIe cap.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing

	// DRAMBandwidth is the controller DRAM bandwidth in bytes/s (15–26 GB/s
	// in modern controllers; 20 GB/s in the §4.5 exploration).
	DRAMBandwidth float64
	// DRAMBytes is the controller DRAM capacity (a few GB).
	DRAMBytes int64
	// ExternalBandwidth is the measured host interface bandwidth in
	// bytes/s (3.2 GB/s for the Intel DC P4500).
	ExternalBandwidth float64

	// EmbeddedCores and CoreFreqHz describe the controller CPUs that run
	// the FTL and the DeepStore query engine.
	EmbeddedCores int
	CoreFreqHz    float64

	// BasePowerW is drawn by the stock SSD at peak (~20 W, §4.5);
	// AccelPowerBudgetW is what remains for accelerators (55 W).
	BasePowerW        float64
	AccelPowerBudgetW float64

	// SharedScratchpadBytes is the SSD-level 8 MB scratchpad that also
	// serves as the channel-level accelerators' second-level memory (§4.5).
	SharedScratchpadBytes int64
	// SharedScratchpadBandwidth is the broadcast bandwidth of that L2 to
	// the channel-level accelerators in bytes/s.
	SharedScratchpadBandwidth float64

	// FlashFaults optionally enables the deterministic flash read-error /
	// read-retry model; the zero value injects nothing and leaves the
	// device's timing bit-identical to an unfaulted run.
	FlashFaults FlashFaultConfig
}

// FlashFaultConfig seeds the device's flash read-error model. Retries charge
// extra array-read time to the simulated clock (see flash.ReadFaults).
type FlashFaultConfig struct {
	// Seed roots the device's fault-injection stream.
	Seed int64
	// ReadErrorRate is the per-sense failure probability in [0, 1).
	ReadErrorRate float64
	// MaxRetries bounds re-senses per read (0 = flash.DefaultReadRetries).
	MaxRetries int
	// RetryLatency is the extra plane-busy time per retry (0 = the
	// array-read latency).
	RetryLatency sim.Duration
}

// DefaultConfig returns the §6.1 evaluation device.
func DefaultConfig() Config {
	return Config{
		Geometry:                  flash.DefaultGeometry(),
		Timing:                    flash.DefaultTiming(),
		DRAMBandwidth:             20e9,
		DRAMBytes:                 4 << 30,
		ExternalBandwidth:         3.2e9,
		EmbeddedCores:             8,
		CoreFreqHz:                1.6e9,
		BasePowerW:                20,
		AccelPowerBudgetW:         55,
		SharedScratchpadBytes:     8 << 20,
		SharedScratchpadBandwidth: 64e9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.DRAMBandwidth <= 0 || c.ExternalBandwidth <= 0 || c.SharedScratchpadBandwidth <= 0 {
		return fmt.Errorf("ssd: non-positive bandwidth in config")
	}
	if c.DRAMBytes <= 0 || c.SharedScratchpadBytes <= 0 {
		return fmt.Errorf("ssd: non-positive memory size in config")
	}
	if c.EmbeddedCores <= 0 || c.CoreFreqHz <= 0 {
		return fmt.Errorf("ssd: invalid embedded cores")
	}
	if c.BasePowerW < 0 || c.AccelPowerBudgetW <= 0 {
		return fmt.Errorf("ssd: invalid power budget")
	}
	if f := c.FlashFaults; f.ReadErrorRate < 0 || f.ReadErrorRate >= 1 ||
		f.MaxRetries < 0 || f.RetryLatency < 0 {
		return fmt.Errorf("ssd: invalid flash fault config %+v", c.FlashFaults)
	}
	return nil
}

// Device is a simulated SSD instance bound to a sim engine.
type Device struct {
	Engine *sim.Engine
	Config Config
	Flash  *flash.Array
	FTL    *ftl.FTL

	// DRAM is the controller DRAM interface; weight streaming, result
	// staging, and external transfers all cross it.
	DRAM *sim.Link
	// External is the host interface (PCIe).
	External *sim.Link
	// SharedSpad is the SSD-level scratchpad's broadcast port serving the
	// channel-level accelerators as an L2 (§4.5).
	SharedSpad *sim.Link

	// reg and tracer are the observability sinks attached by the engine that
	// owns the device (AttachObs); both are nil-safe no-ops until attached.
	reg    *obs.Registry
	tracer *obs.Tracer
}

// AttachObs installs the metrics registry and span tracer on the device and
// its flash array, so page reads and host streams land in the owning engine's
// trace. Call before issuing I/O; attaching is not synchronized with it.
func (d *Device) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	d.reg = reg
	d.tracer = tr
	d.Flash.SetTracer(tr)
}

// New builds a device on the engine.
func New(e *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arr, err := flash.NewArray(e, cfg.Geometry, cfg.Timing)
	if err != nil {
		return nil, err
	}
	if ff := cfg.FlashFaults; ff.ReadErrorRate > 0 {
		err := arr.SetReadFaults(flash.ReadFaults{
			ErrorRate:    ff.ReadErrorRate,
			MaxRetries:   ff.MaxRetries,
			RetryLatency: ff.RetryLatency,
			Inj:          fault.New(ff.Seed).Fork("flash"),
		})
		if err != nil {
			return nil, err
		}
	}
	return &Device{
		Engine:     e,
		Config:     cfg,
		Flash:      arr,
		FTL:        ftl.NewFTL(cfg.Geometry.BlocksPerPlane),
		DRAM:       sim.NewLink(e, "ssd-dram", cfg.DRAMBandwidth),
		External:   sim.NewLink(e, "ssd-external", cfg.ExternalBandwidth),
		SharedSpad: sim.NewLink(e, "ssd-l2-spad", cfg.SharedScratchpadBandwidth),
	}, nil
}

// CreateDB allocates and registers a feature database striped across the
// device (the writeDB path). Write timing is not simulated page-by-page —
// intelligent-query workloads write once and query many times (§4.7.2) — but
// the capacity accounting is real.
func (d *Device) CreateDB(name string, featureBytes, features int64) (*ftl.DBMeta, error) {
	layout := ftl.DBLayout{
		Geom:         d.Config.Geometry,
		FeatureBytes: featureBytes,
		Features:     features,
	}
	return d.FTL.CreateDB(name, layout)
}

// StreamStats reports what an external streaming read did.
type StreamStats struct {
	Pages    int64
	Bytes    int64
	Started  sim.Time
	Finished sim.Time
}

// Duration returns the stream's elapsed virtual time.
func (s StreamStats) Duration() sim.Duration {
	return sim.Duration(s.Finished - s.Started)
}

// StreamToHost reads the first `pages` within-channel pages of every channel
// of the database and DMAs them to the host, modeling the baseline's
// SSD-to-host read path: plane read → channel bus → DRAM → external link.
// The per-channel prefetch window is 8 outstanding pages, enough to cover
// the array-read latency. done receives the stream statistics.
//
// The external link is the roofline: 32 channels deliver 25.6 GB/s
// internally but the PCIe interface caps delivery at 3.2 GB/s (§2.2).
func (d *Device) StreamToHost(meta *ftl.DBMeta, maxPagesPerChannel int64, done func(StreamStats)) {
	layout := meta.Layout
	stats := &StreamStats{Started: d.Engine.Now()}
	remainingChannels := 0

	inner := done
	done = func(s StreamStats) {
		d.reg.Counter("ssd_stream_pages").Add(s.Pages)
		d.reg.Counter("ssd_stream_bytes").Add(s.Bytes)
		d.tracer.Add(obs.Span{
			Name: obs.SpanStream, Cat: "ssd",
			Start: s.Started, Dur: s.Duration(),
			Args: map[string]string{"pages": strconv.FormatInt(s.Pages, 10)},
		})
		inner(s)
	}

	for ch := 0; ch < layout.Geom.Channels; ch++ {
		pages := layout.ChannelPages(ch)
		if maxPagesPerChannel > 0 && pages > maxPagesPerChannel {
			pages = maxPagesPerChannel
		}
		if pages == 0 {
			continue
		}
		remainingChannels++
		stats.Pages += pages
		stats.Bytes += pages * layout.Geom.PageBytes

		ch := ch
		var issued, completed int64
		var issue func()
		const window = 8
		var inflight int64
		issue = func() {
			for inflight < window && issued < pages {
				addr := layout.ChannelPageAddr(ch, issued)
				issued++
				inflight++
				d.Flash.ReadPage(addr, func() {
					// Page is in the controller: cross DRAM, then PCIe.
					d.DRAM.Transfer(layout.Geom.PageBytes, func() {
						d.External.Transfer(layout.Geom.PageBytes, func() {
							inflight--
							completed++
							if completed == pages {
								remainingChannels--
								if remainingChannels == 0 {
									stats.Finished = d.Engine.Now()
									done(*stats)
								}
								return
							}
							issue()
						})
					})
				})
			}
		}
		issue()
	}
	if remainingChannels == 0 {
		stats.Finished = d.Engine.Now()
		done(*stats)
	}
}

// StreamRange reads the physical pages holding features [start, end) of the
// database and DMAs them to the host — the migration read-out path of an
// online shard rebalance. Traffic follows the same plane read → channel bus
// → DRAM → external link pipeline as StreamToHost, with the same per-channel
// prefetch window, so migration time is charged to the simulated clock
// exactly like any other flash activity (holistic device timing, after
// SimpleSSD). done receives the stream statistics; the sweep is also
// recorded as a migrate_out span with ssd_migrate_* counters.
func (d *Device) StreamRange(meta *ftl.DBMeta, start, end int64, done func(StreamStats)) {
	layout := meta.Layout
	stats := &StreamStats{Started: d.Engine.Now()}
	remainingChannels := 0

	inner := done
	done = func(s StreamStats) {
		d.reg.Counter("ssd_migrate_pages").Add(s.Pages)
		d.reg.Counter("ssd_migrate_bytes").Add(s.Bytes)
		d.tracer.Add(obs.Span{
			Name: obs.SpanMigrateOut, Cat: "ssd",
			Start: s.Started, Dur: s.Duration(),
			Args: map[string]string{"pages": strconv.FormatInt(s.Pages, 10)},
		})
		if inner != nil {
			inner(s)
		}
	}

	for ch := 0; ch < layout.Geom.Channels; ch++ {
		p0, p1 := layout.ChannelRangePages(ch, start, end)
		pages := p1 - p0
		if pages == 0 {
			continue
		}
		remainingChannels++
		stats.Pages += pages
		stats.Bytes += pages * layout.Geom.PageBytes

		ch, p0 := ch, p0
		var issued, completed int64
		var issue func()
		const window = 8
		var inflight int64
		issue = func() {
			for inflight < window && issued < pages {
				addr := layout.ChannelPageAddr(ch, p0+issued)
				issued++
				inflight++
				d.Flash.ReadPage(addr, func() {
					d.DRAM.Transfer(layout.Geom.PageBytes, func() {
						d.External.Transfer(layout.Geom.PageBytes, func() {
							inflight--
							completed++
							if completed == pages {
								remainingChannels--
								if remainingChannels == 0 {
									stats.Finished = d.Engine.Now()
									done(*stats)
								}
								return
							}
							issue()
						})
					})
				})
			}
		}
		issue()
	}
	if remainingChannels == 0 {
		stats.Finished = d.Engine.Now()
		done(*stats)
	}
}

// ProgramBoundTable charges the flash programming of a database's stripe-
// bound table (ftl.SetBoundTable must have allocated it first). The table is
// computed inside the controller, so each page crosses controller DRAM and
// is programmed — nothing crosses the external link. Runs the engine to
// completion, like the writeDB path it extends.
func (d *Device) ProgramBoundTable(meta *ftl.DBMeta) error {
	table, ok := meta.BoundTable()
	if !ok {
		return fmt.Errorf("ssd: db %d has no bound table allocated", meta.ID)
	}
	for ch := 0; ch < table.Geom.Channels; ch++ {
		pages := table.ChannelPages(ch)
		for p := int64(0); p < pages; p++ {
			addr := table.ChannelPageAddr(ch, p)
			d.DRAM.Transfer(table.Geom.PageBytes, func() {
				d.Flash.ProgramPage(addr, nil)
			})
		}
	}
	d.Engine.Run()
	return nil
}

// ProgramHistory places (or replaces) the persisted query-history image in
// its own block columns and charges programming it: each page of the image
// crosses controller DRAM and is programmed in place, like the bound/quant
// table paths. An empty image clears the region without touching flash.
// Runs the engine to completion.
func (d *Device) ProgramHistory(img []byte) error {
	table, err := d.FTL.SetHistory(d.Config.Geometry, img)
	if err != nil {
		return err
	}
	if len(img) == 0 {
		return nil
	}
	for ch := 0; ch < table.Geom.Channels; ch++ {
		pages := table.ChannelPages(ch)
		for p := int64(0); p < pages; p++ {
			addr := table.ChannelPageAddr(ch, p)
			d.DRAM.Transfer(table.Geom.PageBytes, func() {
				d.Flash.ProgramPage(addr, nil)
			})
		}
	}
	d.Engine.Run()
	return nil
}

// ProgramQuantTable charges the flash programming of a database's quantized
// (int8) feature table (ftl.SetQuantTable must have allocated it first). The
// conversion runs inside the controller, so each page crosses controller
// DRAM and is programmed — nothing crosses the external link. Runs the
// engine to completion, like the writeDB path it extends.
func (d *Device) ProgramQuantTable(meta *ftl.DBMeta) error {
	table, ok := meta.QuantTable()
	if !ok {
		return fmt.Errorf("ssd: db %d has no quantized table allocated", meta.ID)
	}
	for ch := 0; ch < table.Geom.Channels; ch++ {
		pages := table.ChannelPages(ch)
		for p := int64(0); p < pages; p++ {
			addr := table.ChannelPageAddr(ch, p)
			d.DRAM.Transfer(table.Geom.PageBytes, func() {
				d.Flash.ProgramPage(addr, nil)
			})
		}
	}
	d.Engine.Run()
	return nil
}

// InternalBandwidth returns the aggregate flash-channel bandwidth.
func (d *Device) InternalBandwidth() float64 { return d.Flash.InternalBandwidth() }

// PersistMetadata snapshots the FTL's durable state and programs it into the
// reserved metadata block column (§4.4: database metadata "is persisted in a
// reserved flash block"). It returns the image that a power-cycled device
// restores from.
func (d *Device) PersistMetadata() ([]byte, error) {
	img, err := d.FTL.Snapshot()
	if err != nil {
		return nil, err
	}
	// Program the image into block column 0 of channel 0: erase, then
	// program ⌈len/page⌉ pages. Embedded query-history bytes do not count
	// against the reserved block: they already live (and were charged) in
	// the history's own block columns via ProgramHistory; the snapshot
	// merely carries them as the restore channel.
	geom := d.Config.Geometry
	metaBytes := int64(len(img))
	if lay, ok := d.FTL.HistLayoutInfo(); ok {
		metaBytes -= lay.Bytes
	}
	pages := int((metaBytes + geom.PageBytes - 1) / geom.PageBytes)
	if pages > geom.PagesPerBlock {
		return nil, fmt.Errorf("ssd: metadata image %d bytes exceeds the reserved block", len(img))
	}
	addr := flash.PageAddr{Channel: 0, Chip: 0, Plane: 0, Block: 0}
	d.Flash.EraseBlock(addr, nil)
	for p := 0; p < pages; p++ {
		a := addr
		a.Page = p
		d.Flash.ProgramPage(a, nil)
	}
	d.Engine.Run()
	return img, nil
}

// Restore builds a device whose FTL comes from a PersistMetadata image — the
// §4.4 power-cycle path. The image's geometry must match the configuration.
func Restore(e *sim.Engine, cfg Config, img []byte) (*Device, error) {
	d, err := New(e, cfg)
	if err != nil {
		return nil, err
	}
	restored, err := ftl.Restore(img)
	if err != nil {
		return nil, err
	}
	for _, m := range restored.DBs() {
		if m.Layout.Geom != cfg.Geometry {
			return nil, fmt.Errorf("ssd: snapshot geometry %+v does not match device %+v",
				m.Layout.Geom, cfg.Geometry)
		}
	}
	d.FTL = restored
	return d, nil
}
