package ssd

import (
	"math"
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.ExternalBandwidth != 3.2e9 {
		t.Errorf("external bandwidth = %v, want 3.2e9 (P4500 measured)", cfg.ExternalBandwidth)
	}
	if cfg.AccelPowerBudgetW != 55 {
		t.Errorf("accel budget = %v W, want 55 (75 W PCIe − 20 W base)", cfg.AccelPowerBudgetW)
	}
	if cfg.SharedScratchpadBytes != 8<<20 {
		t.Errorf("L2 scratchpad = %d, want 8 MB", cfg.SharedScratchpadBytes)
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.ExternalBandwidth = -1 },
		func(c *Config) { c.DRAMBytes = 0 },
		func(c *Config) { c.EmbeddedCores = 0 },
		func(c *Config) { c.AccelPowerBudgetW = 0 },
		func(c *Config) { c.Geometry.Channels = 0 },
		func(c *Config) { c.Timing.ReadLatency = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mod %d: invalid config accepted", i)
		}
	}
}

func TestNewDevice(t *testing.T) {
	e := sim.NewEngine()
	d, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.InternalBandwidth() != 25.6e9 {
		t.Errorf("internal bandwidth = %v, want 25.6e9", d.InternalBandwidth())
	}
}

func TestCreateDB(t *testing.T) {
	e := sim.NewEngine()
	d, _ := New(e, DefaultConfig())
	meta, err := d.CreateDB("tir", 2048, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Layout.FeatureBytes != 2048 || meta.Layout.Features != 1<<20 {
		t.Errorf("layout = %+v", meta.Layout)
	}
	if _, ok := d.FTL.Lookup(meta.ID); !ok {
		t.Error("created DB not registered")
	}
}

// TestStreamToHostExternalBound checks the §2.2/§3 property that drives the
// whole paper: external streaming is limited by the PCIe interface, far below
// the internal bandwidth.
func TestStreamToHostExternalBound(t *testing.T) {
	e := sim.NewEngine()
	d, _ := New(e, DefaultConfig())
	// 16 KB features, one per page: 32 K pages = 512 MB.
	meta, err := d.CreateDB("estp", 16<<10, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	var got StreamStats
	d.StreamToHost(meta, 0, func(s StreamStats) { got = s })
	e.Run()
	if got.Pages != 32<<10 {
		t.Fatalf("streamed %d pages, want %d", got.Pages, 32<<10)
	}
	secs := got.Duration().Seconds()
	ideal := float64(got.Bytes) / 3.2e9
	if secs < ideal {
		t.Errorf("stream faster than PCIe: %.4fs < %.4fs", secs, ideal)
	}
	if secs > ideal*1.2 {
		t.Errorf("stream not PCIe-bound: %.4fs vs ideal %.4fs", secs, ideal)
	}
	// Effective bandwidth must be far below internal bandwidth.
	eff := float64(got.Bytes) / secs
	if eff > d.InternalBandwidth()/4 {
		t.Errorf("external eff %.2e too close to internal %.2e", eff, d.InternalBandwidth())
	}
}

func TestStreamToHostWindowed(t *testing.T) {
	e := sim.NewEngine()
	d, _ := New(e, DefaultConfig())
	meta, err := d.CreateDB("mir", 2048, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var got StreamStats
	d.StreamToHost(meta, 10, func(s StreamStats) { got = s })
	e.Run()
	if got.Pages != 10*32 {
		t.Errorf("windowed stream read %d pages, want 320", got.Pages)
	}
}

func TestStreamToHostEmptyDB(t *testing.T) {
	e := sim.NewEngine()
	d, _ := New(e, DefaultConfig())
	meta, err := d.CreateDB("empty", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	d.StreamToHost(meta, 0, func(s StreamStats) {
		called = true
		if s.Pages != 0 || s.Duration() != 0 {
			t.Errorf("empty stream stats = %+v", s)
		}
	})
	e.Run()
	if !called {
		t.Error("done not called for empty stream")
	}
}

// TestStreamScalesWithFewerChannels: fewer channels should not change the
// external-bound stream time materially (PCIe still the bottleneck), until
// internal bandwidth drops below external (Fig. 10a's flat region).
func TestStreamFlatAcrossChannelCounts(t *testing.T) {
	timeFor := func(channels int) float64 {
		e := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Geometry.Channels = channels
		d, err := New(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := d.CreateDB("x", 16<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		var got StreamStats
		d.StreamToHost(meta, 0, func(s StreamStats) { got = s })
		e.Run()
		return got.Duration().Seconds()
	}
	t8, t32 := timeFor(8), timeFor(32)
	if math.Abs(t8-t32)/t32 > 0.10 {
		t.Errorf("external stream time varies with channels: 8ch=%.4fs 32ch=%.4fs", t8, t32)
	}
}

func TestStreamRespectsFlashGeometry(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Geometry = flash.Geometry{Channels: 4, ChipsPerChannel: 2, PlanesPerChip: 2,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageBytes: 16 << 10}
	d, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := d.CreateDB("tiny", 16<<10, 64)
	if err != nil {
		t.Fatal(err)
	}
	var got StreamStats
	d.StreamToHost(meta, 0, func(s StreamStats) { got = s })
	e.Run()
	if got.Pages != 64 {
		t.Errorf("pages = %d, want 64", got.Pages)
	}
	if reads := d.Flash.Stats().PageReads; reads != 64 {
		t.Errorf("flash reads = %d, want 64", reads)
	}
}

// TestProgramQuantTable: programming the int8 table advances simulated time
// (DRAM crossing + page programs) and costs a quarter of the fp32 pages.
func TestProgramQuantTable(t *testing.T) {
	e := sim.NewEngine()
	d, _ := New(e, DefaultConfig())
	meta, err := d.CreateDB("tir", 2048, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramQuantTable(meta); err == nil {
		t.Fatal("programmed a table that was never allocated")
	}
	meta, err = d.FTL.SetQuantTable(meta.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := e.Now()
	if err := d.ProgramQuantTable(meta); err != nil {
		t.Fatal(err)
	}
	if e.Now() == start {
		t.Error("quant table programming advanced no simulated time")
	}
	table, ok := meta.QuantTable()
	if !ok {
		t.Fatal("QuantTable not derivable after Set")
	}
	var dataPages, quantPages int64
	for ch := 0; ch < meta.Layout.Geom.Channels; ch++ {
		dataPages += meta.Layout.ChannelPages(ch)
		quantPages += table.ChannelPages(ch)
	}
	if quantPages*4 > dataPages+int64(meta.Layout.Geom.Channels)*4 {
		t.Errorf("quant table spans %d pages vs %d fp32 pages; want ~1/4", quantPages, dataPages)
	}
}
