package ssd

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
)

func ftlDBID(v uint64) ftl.DBID { return ftl.DBID(v) }

// TestPowerCycle exercises the §4.4 metadata path: databases created on one
// device survive a persist + restore round trip with identical layouts.
func TestPowerCycle(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.CreateDB("alpha", 2048, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.CreateDB("beta", 16<<10, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	img, err := d.PersistMetadata()
	if err != nil {
		t.Fatal(err)
	}
	// The persist path must erase and program the reserved block.
	stats := d.Flash.Stats()
	if stats.BlockErases == 0 || stats.PagePrograms == 0 {
		t.Errorf("persist did not touch flash: %+v", stats)
	}

	e2 := sim.NewEngine()
	d2, err := Restore(e2, cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []uint64{uint64(a.ID), uint64(b.ID)} {
		got, ok := d2.FTL.Lookup(ftlDBID(want))
		if !ok {
			t.Fatalf("db %d lost across power cycle", want)
		}
		orig, _ := d.FTL.Lookup(ftlDBID(want))
		if got.Layout != orig.Layout || got.Name != orig.Name {
			t.Errorf("db %d metadata changed", want)
		}
	}
	// The restored device can allocate without colliding.
	if _, err := d2.CreateDB("gamma", 2048, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorruptImage(t *testing.T) {
	e := sim.NewEngine()
	if _, err := Restore(e, DefaultConfig(), []byte("junk")); err == nil {
		t.Error("corrupt metadata image accepted")
	}
}

func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d, _ := New(e, cfg)
	if _, err := d.CreateDB("x", 2048, 1000); err != nil {
		t.Fatal(err)
	}
	img, err := d.PersistMetadata()
	if err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig()
	other.Geometry.Channels = 16
	if _, err := Restore(sim.NewEngine(), other, img); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
