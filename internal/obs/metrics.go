package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric. Safe for concurrent use; a nil
// Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, or in the implicit overflow
// bucket past the last bound. Alongside the buckets it tracks exact count,
// sum, min, and max, so means are exact and only the quantiles are
// bucket-resolution. Safe for concurrent use; a nil Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the nearest-rank p-th percentile at bucket resolution:
// the upper bound of the bucket containing rank ⌈p·n/100⌉, clamped to the
// observed [min, max] so single-bucket distributions do not report a bound
// far above anything seen. Returns NaN with no observations.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	rank := int64(quantileIndex(int(h.count), p)) + 1 // 1-based
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.max
			if i < len(h.bounds) && h.bounds[i] < v {
				v = h.bounds[i]
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// LatencyBucketsMs returns the default 1-2-5 decade bucket bounds for
// latency histograms, in milliseconds: 1 µs up to 100 s. Sub-microsecond
// observations land in the first bucket; anything above 100 s overflows.
func LatencyBucketsMs() []float64 {
	var b []float64
	for _, decade := range []float64{1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4} {
		for _, m := range []float64{1, 2, 5} {
			b = append(b, decade*m)
		}
	}
	return append(b, 1e5)
}

// Registry names and owns a process's metrics. Metric handles are created on
// first use and stable thereafter, so hot paths can cache them. Safe for
// concurrent use; a nil Registry hands out nil (no-op) metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of observations at
// or below the upper bound (non-cumulative).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Min      float64  `json:"min"`
	Max      float64  `json:"max"`
	Mean     float64  `json:"mean"`
	P50      float64  `json:"p50"`
	P90      float64  `json:"p90"`
	P99      float64  `json:"p99"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time export of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every metric. A nil registry exports empty (non-nil)
// maps so callers can fold subsystem stats in unconditionally.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{
		Count:    h.count,
		Sum:      h.sum,
		Min:      h.min,
		Max:      h.max,
		Overflow: h.counts[len(h.counts)-1],
	}
	if h.count > 0 {
		hs.Mean = h.sum / float64(h.count)
		hs.P50 = h.quantileLocked(50)
		hs.P90 = h.quantileLocked(90)
		hs.P99 = h.quantileLocked(99)
	}
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: b, Count: h.counts[i]})
		}
	}
	return hs
}
