package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestTracerCollectsAndCaps(t *testing.T) {
	tr := NewTracer(2)
	tr.Add(Span{Name: "a", Cat: "core", Start: 0, Dur: sim.Millisecond})
	tr.Add(Span{Name: "b", Cat: "core", Start: sim.Time(sim.Millisecond), Dur: sim.Millisecond})
	tr.Add(Span{Name: "c", Cat: "core"})
	if tr.Len() != 2 {
		t.Errorf("len = %d, want capped at 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	spans := tr.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans = %+v", spans)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("reset did not clear")
	}

	// nil tracer is a no-op everywhere.
	var nilTr *Tracer
	nilTr.Add(Span{})
	if nilTr.Len() != 0 || nilTr.Spans() != nil || nilTr.Dropped() != 0 {
		t.Error("nil tracer not inert")
	}
}

// TestWriteChromeTrace validates the exported file against the trace-event
// container format: a JSON object with a traceEvents array of "X" events
// whose ts/dur are microseconds.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	tr.Add(Span{Name: "scan", Cat: "core", TID: 1, Start: 0, Dur: 2 * sim.Millisecond,
		Args: map[string]string{"mode": "batched"}})
	tr.Add(Span{Name: "flash_read", Cat: "flash", TID: 3,
		Start: sim.Time(sim.Microsecond), Dur: 53 * sim.Microsecond})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("%d events", len(got.TraceEvents))
	}
	ev := got.TraceEvents[0]
	if ev.Ph != "X" || ev.Name != "scan" || ev.Dur != 2000 { // 2 ms = 2000 µs
		t.Errorf("event 0 = %+v", ev)
	}
	if ev.Args["mode"] != "batched" {
		t.Errorf("args lost: %+v", ev.Args)
	}
	fl := got.TraceEvents[1]
	if fl.Ts != 1 || fl.Dur != 53 || fl.Tid != 3 {
		t.Errorf("event 1 = %+v", fl)
	}
	if ev.Pid == fl.Pid {
		t.Error("categories share a pid lane")
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
}
