package obs

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestQuantileNearestRank pins the documented nearest-rank definition:
// the value at 1-based rank ⌈p·n/100⌉. The p50-of-4 case is the bug the
// three ad-hoc copies disagreed on (idx = n·p/100 returns the 3rd order
// statistic instead of the 2nd).
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"n=1 p=0", []float64{7}, 0, 7},
		{"n=1 p=50", []float64{7}, 50, 7},
		{"n=1 p=100", []float64{7}, 100, 7},
		{"n=4 p=0 is min", []float64{1, 2, 3, 4}, 0, 1},
		{"n=4 p=50 is 2nd order stat", []float64{1, 2, 3, 4}, 50, 2},
		{"n=4 p=99", []float64{1, 2, 3, 4}, 99, 4},
		{"n=4 p=100 is max", []float64{1, 2, 3, 4}, 100, 4},
		{"n=4 p=25 exact-rank boundary", []float64{1, 2, 3, 4}, 25, 1},
		{"n=4 p=26 crosses the boundary", []float64{1, 2, 3, 4}, 26, 2},
		{"n=4 p=75 exact-rank boundary", []float64{1, 2, 3, 4}, 75, 3},
		{"n=5 p=50 is the median", []float64{1, 2, 3, 4, 5}, 50, 3},
		{"n=10 p=90 exact rank", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 90, 8},
		{"n=10 p=91", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 91, 9},
		{"n=99 p=50", seq(99), 50, 49}, // rank ⌈49.5⌉ = 50 → value 49
		{"n=100 p=99 exact rank", seq(100), 99, 98},
		{"n=100 p=50 exact rank", seq(100), 50, 49},
		{"n=100 p=100", seq(100), 100, 99},
		{"clamped below", []float64{1, 2}, -5, 1},
		{"clamped above", []float64{1, 2}, 120, 2},
	}
	for _, c := range cases {
		if got := Quantile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: Quantile(p=%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 50)) {
		t.Error("empty sample did not return NaN")
	}
}

func seq(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i)
	}
	return s
}

func TestQuantileDurations(t *testing.T) {
	d := []sim.Duration{sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond, 4 * sim.Millisecond}
	if got := QuantileDurations(d, 50); got != 2*sim.Millisecond {
		t.Errorf("p50 = %v, want 2ms", got)
	}
	if got := QuantileDurations(d, 99); got != 4*sim.Millisecond {
		t.Errorf("p99 = %v, want 4ms", got)
	}
	if got := QuantileDurations(nil, 50); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("queries") != c {
		t.Error("counter handle not stable")
	}
	g := r.Gauge("mode")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v", g.Value())
	}

	// nil registry and nil metrics are no-ops.
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z", nil).Observe(1)
	snap := nilReg.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Error("nil registry snapshot has nil maps")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for _, v := range []float64{0.5, 1.5, 1.7, 4} {
		h.Observe(v)
	}
	// Ranks: p50 → rank 2 → the 2nd observation in bucket order: bucket
	// le=2 (holds 1.5 and 1.7). Bucket resolution reports the upper bound.
	if got := h.Quantile(50); got != 2 {
		t.Errorf("p50 = %v, want bucket bound 2", got)
	}
	if got := h.Quantile(100); got != 4 {
		t.Errorf("p100 = %v, want max 4 (clamped below bound 5)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want first bucket bound 1", got)
	}
	h.Observe(99) // overflow
	if got := h.Quantile(100); got != 99 {
		t.Errorf("overflow p100 = %v, want observed max", got)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if !math.IsNaN(NewHistogram(nil).Quantile(50)) {
		t.Error("empty histogram quantile not NaN")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1.5)
	h := r.Histogram("lat_ms", LatencyBucketsMs())
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Gauges["b"] != 1.5 {
		t.Errorf("snapshot scalars: %+v", snap)
	}
	hs, ok := snap.Histograms["lat_ms"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 2 || hs.Sum != 3.5 || hs.Min != 0.5 || hs.Max != 3 {
		t.Errorf("histogram snapshot: %+v", hs)
	}
	if hs.Mean != 1.75 {
		t.Errorf("mean = %v", hs.Mean)
	}
	if len(hs.Buckets) != 2 {
		t.Errorf("expected 2 occupied buckets, got %+v", hs.Buckets)
	}
}
