package obs

import "repro/internal/sim"

// Canonical span/stage names — the taxonomy every instrumented layer uses,
// so breakdown tables and trace files agree on vocabulary (see DESIGN.md
// "Observability").
const (
	// StageQCacheLookup is the QCN sweep of the query cache (§4.6).
	StageQCacheLookup = "qcache_lookup"
	// StageScan is the event-driven accelerator scan of the database range
	// (flash reads, weight streaming, and systolic compute overlap inside
	// it; the per-page detail is in the "flash" span category).
	StageScan = "scan"
	// StageSharedScan is the scan stage of a query served by a shared
	// multi-query sweep (core.QueryMulti): the same event-driven scan as
	// StageScan, but its flash and weight traffic are paid once for the
	// whole batch.
	StageSharedScan = "shared_scan"
	// StageSchedQueue is the time a query waited in the scheduler's
	// admission queue before its batch dispatched (core.Scheduler).
	StageSchedQueue = "sched_queue"
	// StageBoundCheck is the stripe-bound table consultation of the exact
	// pruning tier: per full stripe-queue evaluation, one table-entry read
	// plus the interval-propagation compare on the channel accelerator.
	StageBoundCheck = "bound_check"
	// StageRerank is the SCN re-scoring of a cache hit's stored top-K.
	StageRerank = "rerank"
	// StageRerankExact is the float32 re-scoring of the int8 scan's K·margin
	// candidate set in two-pass exact quantized mode (DESIGN.md §12).
	StageRerankExact = "rerank_exact"
	// StageDMA is the getResults transfer of the top-K to the host.
	StageDMA = "dma"
	// StageHistAppend is the query-history append: the fixed-width hot
	// record plus the cold payload crossing controller DRAM (DESIGN.md §15).
	StageHistAppend = "hist_append"
	// StageHistMine is the periodic mining pass over the hot history records
	// that refreshes the learned admission model.
	StageHistMine = "hist_mine"
	// SpanFlashRead is one page read (array sense + channel bus transfer).
	SpanFlashRead = "flash_read"
	// SpanStream is one StreamToHost sweep (the baseline read-out path).
	SpanStream = "stream_to_host"
	// SpanShard is one shard's slice of a cluster fan-out.
	SpanShard = "shard"
	// SpanMigrateOut is one migration read-out of a contiguous feature range
	// on the source device (flash reads → DRAM → external link), charged on
	// that device's simulated clock like any other flash activity. Queries
	// racing the move keep their own stage taxonomy untouched, so the
	// stage-sum == latency invariant is unaffected by migration traffic.
	SpanMigrateOut = "migrate_out"
	// SpanMigrate is one rebalance chunk on the cluster timeline: the source
	// read-out plus the destination programs that precede a routing flip.
	SpanMigrate = "migrate"
	// SpanRetry is one re-submission of a command by the proto client.
	SpanRetry = "retry"
)

// Stage is one component of a query's end-to-end latency. A query's stages
// are disjoint on the simulated timeline, so their durations sum exactly to
// the reported Result.Latency (test-enforced).
type Stage struct {
	Name string
	Dur  sim.Duration
}

// SumStages totals the stage durations.
func SumStages(stages []Stage) sim.Duration {
	var sum sim.Duration
	for _, s := range stages {
		sum += s.Dur
	}
	return sum
}

// StageStat aggregates one stage across many queries.
type StageStat struct {
	Name  string
	Total sim.Duration
	Count int64
}

// SumStageStats totals the aggregated per-stage durations.
func SumStageStats(stats []StageStat) sim.Duration {
	var sum sim.Duration
	for _, s := range stats {
		sum += s.Total
	}
	return sum
}

// AccumulateStages merges a query's stages into the running per-stage stats,
// keeping first-seen stage order (the canonical pipeline order, since every
// query emits stages in execution order).
func AccumulateStages(stats []StageStat, stages []Stage) []StageStat {
	for _, s := range stages {
		found := false
		for i := range stats {
			if stats[i].Name == s.Name {
				stats[i].Total += s.Dur
				stats[i].Count++
				found = true
				break
			}
		}
		if !found {
			stats = append(stats, StageStat{Name: s.Name, Total: s.Dur, Count: 1})
		}
	}
	return stats
}

// QuantileDurations is Quantile over simulated durations sorted ascending;
// an empty sample returns 0.
func QuantileDurations(sorted []sim.Duration, p float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileIndex(len(sorted), p)]
}
