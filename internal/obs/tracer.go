package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// DefaultTraceCap bounds a Tracer's retained spans. A paper-scale replay
// reads tens of thousands of pages; the cap keeps the trace buffer (and the
// exported file) bounded while counting what was dropped, so a truncated
// trace is visible rather than silent.
const DefaultTraceCap = 1 << 17

// Span is one interval on the simulated clock: a query stage, a flash page
// read, a shard's slice of a cluster fan-out, a proto retry.
type Span struct {
	// Name is the event name (the stage taxonomy constants, usually).
	Name string
	// Cat is the category lane ("core", "flash", "cluster", "proto").
	Cat string
	// TID groups spans onto one track in the trace viewer: the query ID for
	// core stages, the channel for flash reads, the shard index for cluster
	// fan-outs.
	TID int64
	// Start is the span's start on the simulated clock.
	Start sim.Time
	// Dur is the span's simulated duration.
	Dur sim.Duration
	// Args are optional key-value annotations shown by the trace viewer.
	Args map[string]string
}

// Tracer collects spans up to a capacity. Safe for concurrent use; a nil
// Tracer is a no-op, so instrumented layers call it unconditionally.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	spans   []Span
	dropped int64
}

// NewTracer returns a tracer retaining up to capacity spans
// (≤ 0 means DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Add records one span, dropping it (and counting the drop) past capacity.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded at capacity.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans in arrival order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Reset discards every retained span and the drop count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.dropped = 0
}

// traceEvent is one Chrome trace-event ("X" complete events; timestamps and
// durations in microseconds, per the trace-event format spec).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, which lets the file carry
// metadata alongside the event array.
type chromeTrace struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the spans as a Chrome trace-event JSON file,
// loadable in chrome://tracing or Perfetto. Categories become pids (one
// process lane per instrumented layer) and TIDs become threads, so a query's
// stages render as one track and the flash channels as parallel tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	pids := map[string]int{}
	trace := chromeTrace{
		TraceEvents:     make([]traceEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
	}
	for _, s := range spans {
		pid, ok := pids[s.Cat]
		if !ok {
			pid = len(pids) + 1
			pids[s.Cat] = pid
		}
		trace.TraceEvents = append(trace.TraceEvents, traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e6, // ps → µs
			Dur:  float64(s.Dur) / 1e6,
			Pid:  pid,
			Tid:  s.TID,
			Args: s.Args,
		})
	}
	if d := t.Dropped(); d > 0 {
		trace.OtherData = map[string]string{
			"droppedSpans": strconv.FormatInt(d, 10),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
