// Package obs is the observability layer of the simulator: a lightweight
// metrics registry (counters, gauges, fixed-bucket histograms) and a
// per-query span tracer on the simulated clock.
//
// The paper's whole evaluation (§5–§6) is latency and energy *breakdowns* —
// per-stage time in flash reads, DMA, accelerator compute, and cache lookups
// — so the engine records where simulated time goes, not just how much of it
// passed. Every layer (core, flash, ssd, cluster, proto, qcache) reports
// through this package: counters and histograms aggregate into a JSON
// Snapshot, and spans export as a Chrome trace-event file loadable in
// chrome://tracing or Perfetto.
//
// The package also owns the one canonical percentile implementation,
// Quantile (nearest-rank). Ad-hoc percentile snippets elsewhere in the tree
// are bugs by policy: three mutually inconsistent copies (one off by a full
// rank) are what motivated this package.
package obs

import "math"

// Quantile returns the nearest-rank p-th percentile (p in [0, 100]) of a
// sample sorted in ascending order: the value at 1-based rank ⌈p·n/100⌉,
// clamped to [1, n] so p = 0 yields the minimum and p = 100 the maximum.
//
// Nearest-rank means the result is always an element of the sample (no
// interpolation). For example, the p50 of a 4-sample set is the 2nd order
// statistic: ⌈50·4/100⌉ = 2.
//
// An empty sample returns NaN. p outside [0, 100] is clamped.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	return sorted[quantileIndex(n, p)]
}

// quantileIndex returns the 0-based nearest-rank index for a sample of n
// (n ≥ 1) at percentile p.
func quantileIndex(n int, p float64) int {
	// Multiply before dividing: p·n is exact for integral p and modest n,
	// so exact-rank boundaries (p = 50, n = 4 → rank 2) never ride on a
	// one-ULP rounding error in p/100.
	rank := int(math.Ceil(p * float64(n) / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank - 1
}
