package reorg

import (
	"errors"
	"reflect"
	"testing"
)

// OrderByHeat packs stripes hottest-first while keeping each stripe's
// internal feature order, including a partial trailing stripe.
func TestOrderByHeat(t *testing.T) {
	// 7 features in stripes of 3: stripe 0 = {0,1,2}, 1 = {3,4,5}, 2 = {6}.
	order, err := OrderByHeat([]float64{1, 5, 3}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 4, 5, 6, 0, 1, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	// The result must be a valid ApplyOrder permutation.
	vectors := make([][]float32, 7)
	for i := range vectors {
		vectors[i] = []float32{float32(i)}
	}
	moved, err := ApplyOrder(vectors, order)
	if err != nil {
		t.Fatal(err)
	}
	if moved[0][0] != 3 || moved[3][0] != 6 || moved[4][0] != 0 {
		t.Fatalf("ApplyOrder placed %v", moved)
	}
}

func TestOrderByHeatTiesAreStable(t *testing.T) {
	// Equal heat keeps ascending stripe order — the identity permutation.
	order, err := OrderByHeat([]float64{2, 2, 2}, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("tied heat reordered: %v", order)
	}
}

func TestOrderByHeatValidation(t *testing.T) {
	if _, err := OrderByHeat([]float64{1}, 4, 0); !errors.Is(err, ErrNoVectors) {
		t.Errorf("n=0 returned %v", err)
	}
	if _, err := OrderByHeat([]float64{1}, 0, 4); !errors.Is(err, ErrBadStripe) {
		t.Errorf("stripe=0 returned %v", err)
	}
	if _, err := OrderByHeat([]float64{1, 2, 3}, 4, 4); !errors.Is(err, ErrBadStripe) {
		t.Errorf("heat/stripe mismatch returned %v", err)
	}
}
