// Package reorg implements in-storage feature reorganization, the §7
// extension the paper points at ("recent work has explored reorganizing
// feature vectors in-storage for efficient search operations; such
// techniques can also be exploited by DeepStore"): feature vectors are
// clustered offline, stored cluster-contiguously, and a query scans only the
// clusters whose centroids score highest — trading a bounded recall loss for
// a proportional cut in flash traffic and SCN compute.
package reorg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Typed validation errors, so callers can distinguish degenerate inputs from
// internal failures (errors.Is works through the wrapped detail).
var (
	// ErrNoVectors rejects clustering or ranking over an empty input.
	ErrNoVectors = errors.New("reorg: no vectors")
	// ErrBadK rejects cluster counts outside [1, len(vectors)].
	ErrBadK = errors.New("reorg: cluster count out of range")
	// ErrBadStripe rejects non-positive stripe granularities and window
	// widths in the heat-ranking helpers.
	ErrBadStripe = errors.New("reorg: stripe parameter out of range")
)

// Clustering is the offline product: centroids and the cluster-contiguous
// feature order.
type Clustering struct {
	// Centroids[c] is cluster c's mean vector.
	Centroids [][]float32
	// Assign[i] is the cluster of original feature i.
	Assign []int
	// Order lists original feature indices cluster by cluster — the §4.4
	// striping order a reorganized database would use.
	Order []int
	// Offsets[c] is the first position of cluster c in Order;
	// Offsets[len(Centroids)] == len(Order).
	Offsets []int
}

// KMeans clusters the vectors with Lloyd's algorithm (deterministic
// seeding, fixed iteration budget — reorganization happens offline, §2.1's
// offline phase).
func KMeans(vectors [][]float32, k int, iters int, seed int64) (*Clustering, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k = %d for %d vectors", ErrBadK, k, n)
	}
	dims := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dims {
			return nil, fmt.Errorf("reorg: vector %d has %d dims, want %d", i, len(v), dims)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// Farthest-point seeding: the first centroid is random, each further
	// one is the vector farthest from every chosen centroid. For separated
	// data this lands one seed per true cluster, avoiding the classic
	// merged/split local optimum of uniform random initialization.
	centroids := make([][]float32, 0, k)
	first := make([]float32, dims)
	copy(first, vectors[rng.Intn(n)])
	centroids = append(centroids, first)
	minD := make([]float64, n)
	for i, v := range vectors {
		minD[i] = sqDist(v, first)
	}
	for len(centroids) < k {
		far, farD := 0, -1.0
		for i, d := range minD {
			if d > farD {
				far, farD = i, d
			}
		}
		c := make([]float32, dims)
		copy(c, vectors[far])
		centroids = append(centroids, c)
		for i, v := range vectors {
			if d := sqDist(v, c); d < minD[i] {
				minD[i] = d
			}
		}
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(v, centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += float64(x)
			}
		}
		// Re-seed empty clusters deterministically before recomputing means:
		// an empty cluster steals the vector farthest from its assigned
		// centroid (ties break to the lowest index), drawn only from clusters
		// with more than one member so the donor never empties in turn. With
		// k ≤ n the pigeonhole principle guarantees such a donor exists
		// whenever any cluster is empty, so every cluster leaves the
		// iteration non-empty — no out-of-range assignment, no NaN centroid
		// from a 0/0 mean, and the same clustering on every run.
		for c := range centroids {
			if counts[c] != 0 {
				continue
			}
			far, farD := -1, -1.0
			for i, v := range vectors {
				if counts[assign[i]] <= 1 {
					continue
				}
				if d := sqDist(v, centroids[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			if far < 0 {
				// Unreachable for k ≤ n; guarded so a future invariant break
				// degrades to the old behavior instead of a 0/0 mean.
				far = c % n
			}
			donor := assign[far]
			for j, x := range vectors[far] {
				sums[donor][j] -= float64(x)
				sums[c][j] += float64(x)
			}
			counts[donor]--
			counts[c]++
			assign[far] = c
			changed = true
		}
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	cl := &Clustering{Centroids: centroids, Assign: assign}
	cl.buildOrder(n, k)
	return cl, nil
}

func (cl *Clustering) buildOrder(n, k int) {
	cl.Order = make([]int, 0, n)
	cl.Offsets = make([]int, k+1)
	for c := 0; c < k; c++ {
		cl.Offsets[c] = len(cl.Order)
		for i := 0; i < n; i++ {
			if cl.Assign[i] == c {
				cl.Order = append(cl.Order, i)
			}
		}
	}
	cl.Offsets[k] = len(cl.Order)
}

// ApplyOrder materializes a reorganization: new[j] = vectors[order[j]].
// order must be a permutation of [0, len(vectors)); the input slice is not
// modified (the migration writes a fresh copy, as the flash move does).
func ApplyOrder(vectors [][]float32, order []int) ([][]float32, error) {
	if len(order) != len(vectors) {
		return nil, fmt.Errorf("reorg: order has %d entries for %d vectors", len(order), len(vectors))
	}
	seen := make([]bool, len(vectors))
	out := make([][]float32, len(vectors))
	for j, src := range order {
		if src < 0 || src >= len(vectors) {
			return nil, fmt.Errorf("reorg: order[%d] = %d out of range", j, src)
		}
		if seen[src] {
			return nil, fmt.Errorf("reorg: order repeats source index %d", src)
		}
		seen[src] = true
		out[j] = vectors[src]
	}
	return out, nil
}

func sqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return s
}

// ClusterSize returns the number of features in cluster c.
func (cl *Clustering) ClusterSize(c int) int {
	return cl.Offsets[c+1] - cl.Offsets[c]
}

// RankClusters orders cluster indices by a query's affinity to their
// centroids, using the provided scorer (e.g. the SCN or QCN itself, so the
// pruning decision uses the same learned similarity as the scan).
func (cl *Clustering) RankClusters(score func(centroid []float32) float32) []int {
	type ranked struct {
		c int
		s float32
	}
	rs := make([]ranked, len(cl.Centroids))
	for c, cent := range cl.Centroids {
		rs[c] = ranked{c: c, s: score(cent)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].c < rs[j].c
	})
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.c
	}
	return out
}

// StripeHeat folds per-feature heat (e.g. top-K appearance counts) into
// per-stripe totals at the given stripe granularity — the aggregation the
// rebalancer feeds into RankStripes/HottestWindow to pick which stripe range
// migrates off a hot shard.
func StripeHeat(perFeature []int64, stripeFeatures int) ([]float64, error) {
	if stripeFeatures < 1 {
		return nil, fmt.Errorf("%w: stripe of %d features", ErrBadStripe, stripeFeatures)
	}
	if len(perFeature) == 0 {
		return nil, ErrNoVectors
	}
	stripes := (len(perFeature) + stripeFeatures - 1) / stripeFeatures
	out := make([]float64, stripes)
	for i, h := range perFeature {
		out[i/stripeFeatures] += float64(h)
	}
	return out, nil
}

// RankStripes orders stripe indices hottest-first — the RankClusters
// discipline (descending score, ascending index on ties) applied to
// per-stripe heat, so the migration candidate order is deterministic.
func RankStripes(heat []float64) []int {
	out := make([]int, len(heat))
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(i, j int) bool {
		if heat[out[i]] != heat[out[j]] {
			return heat[out[i]] > heat[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// OrderByHeat turns per-stripe heat into a full feature permutation that
// packs stripes hottest-first: stripe s (features [s·stripeFeatures,
// (s+1)·stripeFeatures) of an n-feature database, the last stripe possibly
// partial) keeps its internal order but stripes are concatenated in
// RankStripes order. The result is a valid ApplyOrder permutation placing
// the hottest stripes at the lowest feature indices — the earliest,
// lowest-latency pages of every channel.
func OrderByHeat(heat []float64, stripeFeatures, n int) ([]int, error) {
	if n <= 0 {
		return nil, ErrNoVectors
	}
	if stripeFeatures < 1 {
		return nil, fmt.Errorf("%w: stripe of %d features", ErrBadStripe, stripeFeatures)
	}
	stripes := (n + stripeFeatures - 1) / stripeFeatures
	if len(heat) != stripes {
		return nil, fmt.Errorf("%w: %d heat entries for %d stripes", ErrBadStripe, len(heat), stripes)
	}
	order := make([]int, 0, n)
	for _, s := range RankStripes(heat) {
		lo := s * stripeFeatures
		hi := lo + stripeFeatures
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	}
	return order, nil
}

// HottestWindow returns the start index of the contiguous w-stripe window
// with the greatest total heat (ties break to the lowest start) — the
// stripe range an online split migrates as one contiguous move.
func HottestWindow(heat []float64, w int) (int, error) {
	if w < 1 || w > len(heat) {
		return 0, fmt.Errorf("%w: window of %d over %d stripes", ErrBadStripe, w, len(heat))
	}
	var sum float64
	for _, h := range heat[:w] {
		sum += h
	}
	best, bestSum := 0, sum
	for s := 1; s+w <= len(heat); s++ {
		sum += heat[s+w-1] - heat[s-1]
		if sum > bestSum {
			best, bestSum = s, sum
		}
	}
	return best, nil
}

// Candidates returns the original feature indices of the top-m ranked
// clusters for the query, plus the fraction of the database they cover —
// the pruned scan set.
func (cl *Clustering) Candidates(ranked []int, m int) (indices []int, fraction float64) {
	if m > len(ranked) {
		m = len(ranked)
	}
	for _, c := range ranked[:m] {
		indices = append(indices, cl.Order[cl.Offsets[c]:cl.Offsets[c+1]]...)
	}
	if len(cl.Order) > 0 {
		fraction = float64(len(indices)) / float64(len(cl.Order))
	}
	return indices, fraction
}
