package reorg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clusteredData builds n vectors drawn from k well-separated centers.
func clusteredData(n, k, dims int, seed int64) (vectors [][]float32, truth []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, k)
	for c := range centers {
		v := make([]float32, dims)
		for j := range v {
			v[j] = float32(c*10) + rng.Float32()
		}
		centers[c] = v
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		v := make([]float32, dims)
		for j := range v {
			v[j] = centers[c][j] + 0.1*(rng.Float32()*2-1)
		}
		vectors = append(vectors, v)
		truth = append(truth, c)
	}
	return vectors, truth
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	vectors, truth := clusteredData(300, 4, 8, 1)
	cl, err := KMeans(vectors, 4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated clusters: every pair in the same true cluster must
	// land in the same found cluster (up to label permutation).
	label := map[int]int{}
	for i := range vectors {
		if want, ok := label[truth[i]]; ok {
			if cl.Assign[i] != want {
				t.Fatalf("vector %d split from its true cluster", i)
			}
		} else {
			label[truth[i]] = cl.Assign[i]
		}
	}
}

func TestClusteringOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		vectors, _ := clusteredData(120, 3, 4, seed)
		cl, err := KMeans(vectors, 5, 10, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, len(vectors))
		for _, i := range cl.Order {
			if i < 0 || i >= len(vectors) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Offsets partition the order and sizes sum to n.
		total := 0
		for c := range cl.Centroids {
			total += cl.ClusterSize(c)
		}
		return total == len(vectors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRankClustersOrders(t *testing.T) {
	vectors, _ := clusteredData(200, 4, 8, 3)
	cl, err := KMeans(vectors, 4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Score clusters by distance to a vector from cluster 0 in found
	// labels: its own cluster must rank first.
	q := vectors[0]
	ranked := cl.RankClusters(func(cent []float32) float32 {
		return -float32(sqDist(q, cent))
	})
	if ranked[0] != cl.Assign[0] {
		t.Errorf("own cluster ranked %v, assignment %d", ranked, cl.Assign[0])
	}
}

func TestCandidatesFraction(t *testing.T) {
	vectors, _ := clusteredData(400, 8, 4, 5)
	cl, err := KMeans(vectors, 8, 15, 6)
	if err != nil {
		t.Fatal(err)
	}
	ranked := cl.RankClusters(func([]float32) float32 { return 0 })
	all, frac := cl.Candidates(ranked, 8)
	if len(all) != 400 || frac != 1.0 {
		t.Errorf("full candidates = %d (%.2f)", len(all), frac)
	}
	some, frac2 := cl.Candidates(ranked, 2)
	if len(some) == 0 || frac2 >= 1 {
		t.Errorf("pruned candidates = %d (%.2f)", len(some), frac2)
	}
	// Over-asking clamps.
	if _, f := cl.Candidates(ranked, 99); f != 1.0 {
		t.Error("over-ask not clamped")
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 1, 5, 1); err == nil {
		t.Error("empty input accepted")
	}
	v := [][]float32{{1}, {2}}
	if _, err := KMeans(v, 3, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans([][]float32{{1}, {1, 2}}, 1, 5, 1); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vectors, _ := clusteredData(100, 3, 4, 9)
	a, _ := KMeans(vectors, 3, 10, 42)
	b, _ := KMeans(vectors, 3, 10, 42)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}

// TestKMeansDegenerateInputs: empty inputs and out-of-range k return the
// typed errors instead of panicking or looping.
func TestKMeansDegenerateInputs(t *testing.T) {
	if _, err := KMeans(nil, 1, 5, 1); !errors.Is(err, ErrNoVectors) {
		t.Errorf("empty input: %v, want ErrNoVectors", err)
	}
	vectors, _ := clusteredData(10, 2, 4, 1)
	for _, k := range []int{0, -3, 11, 100} {
		if _, err := KMeans(vectors, k, 5, 1); !errors.Is(err, ErrBadK) {
			t.Errorf("k=%d over 10 vectors: %v, want ErrBadK", k, err)
		}
	}
	// k == n is the boundary: legal, every vector its own cluster.
	cl, err := KMeans(vectors, 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range cl.Assign {
		if seen[c] {
			t.Fatal("k == n left two vectors in one cluster")
		}
		seen[c] = true
	}
}

// TestKMeansEmptyClusterReseeding: duplicate-heavy data forces empty
// clusters mid-iteration (k exceeds the distinct values); the deterministic
// re-seed must keep every cluster populated, every centroid finite, and two
// runs identical.
func TestKMeansEmptyClusterReseeding(t *testing.T) {
	// 30 vectors but only 3 distinct values: any k > 3 empties clusters.
	var vectors [][]float32
	for i := 0; i < 30; i++ {
		v := float32(i % 3)
		vectors = append(vectors, []float32{v, v * 2})
	}
	for _, k := range []int{4, 7, 30} {
		a, err := KMeans(vectors, k, 15, 9)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		counts := make([]int, k)
		for i, c := range a.Assign {
			if c < 0 || c >= k {
				t.Fatalf("k=%d: vector %d assigned to cluster %d", k, i, c)
			}
			counts[c]++
		}
		for c, cent := range a.Centroids {
			for j, x := range cent {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					t.Fatalf("k=%d: centroid %d dim %d is %v", k, c, j, x)
				}
			}
		}
		b, err := KMeans(vectors, k, 15, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("k=%d: runs diverged at vector %d", k, i)
			}
		}
		// The order must still be a permutation (ApplyOrder validates).
		if _, err := ApplyOrder(vectors, a.Order); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestStripeHeat: folding, tail stripe, and validation.
func TestStripeHeat(t *testing.T) {
	heat, err := StripeHeat([]int64{1, 2, 3, 4, 5, 6, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 15, 7}
	if len(heat) != len(want) {
		t.Fatalf("%d stripes, want %d", len(heat), len(want))
	}
	for i := range want {
		if heat[i] != want[i] {
			t.Fatalf("stripe %d heat %v, want %v", i, heat[i], want[i])
		}
	}
	if _, err := StripeHeat(nil, 3); !errors.Is(err, ErrNoVectors) {
		t.Errorf("empty: %v, want ErrNoVectors", err)
	}
	if _, err := StripeHeat([]int64{1}, 0); !errors.Is(err, ErrBadStripe) {
		t.Errorf("zero stripe: %v, want ErrBadStripe", err)
	}
}

// TestRankStripes: descending heat, ascending index on ties.
func TestRankStripes(t *testing.T) {
	got := RankStripes([]float64{3, 9, 3, 0, 9})
	want := []int{1, 4, 0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %v, want %v", got, want)
		}
	}
}

// TestHottestWindow: max-sum window, low-start ties, validation.
func TestHottestWindow(t *testing.T) {
	heat := []float64{1, 5, 5, 1, 5, 5, 1}
	start, err := HottestWindow(heat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if start != 1 {
		t.Fatalf("window start %d, want 1 (tie breaks low)", start)
	}
	// Every 3-window of this profile sums to 11: the tie breaks to start 0.
	start, err = HottestWindow(heat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("3-window start %d, want 0 (all windows tie)", start)
	}
	start, err = HottestWindow([]float64{0, 1, 9, 9, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if start != 2 {
		t.Fatalf("2-window start %d, want 2", start)
	}
	if _, err := HottestWindow(heat, 0); !errors.Is(err, ErrBadStripe) {
		t.Errorf("zero window: %v, want ErrBadStripe", err)
	}
	if _, err := HottestWindow(heat, 8); !errors.Is(err, ErrBadStripe) {
		t.Errorf("oversized window: %v, want ErrBadStripe", err)
	}
}
