package reorg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// clusteredData builds n vectors drawn from k well-separated centers.
func clusteredData(n, k, dims int, seed int64) (vectors [][]float32, truth []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, k)
	for c := range centers {
		v := make([]float32, dims)
		for j := range v {
			v[j] = float32(c*10) + rng.Float32()
		}
		centers[c] = v
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		v := make([]float32, dims)
		for j := range v {
			v[j] = centers[c][j] + 0.1*(rng.Float32()*2-1)
		}
		vectors = append(vectors, v)
		truth = append(truth, c)
	}
	return vectors, truth
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	vectors, truth := clusteredData(300, 4, 8, 1)
	cl, err := KMeans(vectors, 4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated clusters: every pair in the same true cluster must
	// land in the same found cluster (up to label permutation).
	label := map[int]int{}
	for i := range vectors {
		if want, ok := label[truth[i]]; ok {
			if cl.Assign[i] != want {
				t.Fatalf("vector %d split from its true cluster", i)
			}
		} else {
			label[truth[i]] = cl.Assign[i]
		}
	}
}

func TestClusteringOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		vectors, _ := clusteredData(120, 3, 4, seed)
		cl, err := KMeans(vectors, 5, 10, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, len(vectors))
		for _, i := range cl.Order {
			if i < 0 || i >= len(vectors) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Offsets partition the order and sizes sum to n.
		total := 0
		for c := range cl.Centroids {
			total += cl.ClusterSize(c)
		}
		return total == len(vectors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRankClustersOrders(t *testing.T) {
	vectors, _ := clusteredData(200, 4, 8, 3)
	cl, err := KMeans(vectors, 4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Score clusters by distance to a vector from cluster 0 in found
	// labels: its own cluster must rank first.
	q := vectors[0]
	ranked := cl.RankClusters(func(cent []float32) float32 {
		return -float32(sqDist(q, cent))
	})
	if ranked[0] != cl.Assign[0] {
		t.Errorf("own cluster ranked %v, assignment %d", ranked, cl.Assign[0])
	}
}

func TestCandidatesFraction(t *testing.T) {
	vectors, _ := clusteredData(400, 8, 4, 5)
	cl, err := KMeans(vectors, 8, 15, 6)
	if err != nil {
		t.Fatal(err)
	}
	ranked := cl.RankClusters(func([]float32) float32 { return 0 })
	all, frac := cl.Candidates(ranked, 8)
	if len(all) != 400 || frac != 1.0 {
		t.Errorf("full candidates = %d (%.2f)", len(all), frac)
	}
	some, frac2 := cl.Candidates(ranked, 2)
	if len(some) == 0 || frac2 >= 1 {
		t.Errorf("pruned candidates = %d (%.2f)", len(some), frac2)
	}
	// Over-asking clamps.
	if _, f := cl.Candidates(ranked, 99); f != 1.0 {
		t.Error("over-ask not clamped")
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 1, 5, 1); err == nil {
		t.Error("empty input accepted")
	}
	v := [][]float32{{1}, {2}}
	if _, err := KMeans(v, 3, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans([][]float32{{1}, {1, 2}}, 1, 5, 1); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vectors, _ := clusteredData(100, 3, 4, 9)
	a, _ := KMeans(vectors, 3, 10, 42)
	b, _ := KMeans(vectors, 3, 10, 42)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}
