package cluster

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func TestShardedScanLinearScaling(t *testing.T) {
	app, err := workload.ByName("MIR")
	if err != nil {
		t.Fatal(err)
	}
	const features = 512_000
	cfg := ssd.DefaultConfig()
	one, err := ShardedScan(1, app, accel.LevelChannel, cfg, features, 1000)
	if err != nil {
		t.Fatal(err)
	}
	four, err := ShardedScan(4, app, accel.LevelChannel, cfg, features, 1000)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Makespan) / float64(four.Makespan)
	if speedup < 3.5 || speedup > 4.5 {
		t.Errorf("4-SSD speedup = %.2f, want ~4 (Fig. 10b linear scaling)", speedup)
	}
	if four.Features != features {
		t.Errorf("sharded features = %d, want %d", four.Features, features)
	}
}

func TestShardedScanBalanced(t *testing.T) {
	app, _ := workload.ByName("TextQA")
	res, err := ShardedScan(3, app, accel.LevelChannel, ssd.DefaultConfig(), 300_001, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDevice) != 3 {
		t.Fatalf("%d shards", len(res.PerDevice))
	}
	if imb := res.Imbalance(); imb > 0.05 {
		t.Errorf("shard imbalance = %.3f, want < 5%%", imb)
	}
	var sum int64
	for _, d := range res.PerDevice {
		sum += d.Features
	}
	if sum != 300_001 {
		t.Errorf("shards sum to %d features", sum)
	}
}

func TestShardedScanActivityAggregates(t *testing.T) {
	app, _ := workload.ByName("TIR")
	res, err := ShardedScan(2, app, accel.LevelChannel, ssd.DefaultConfig(), 200_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var flash int64
	for _, d := range res.PerDevice {
		flash += d.Activity.FlashBytes
	}
	if res.Activity.FlashBytes != flash {
		t.Errorf("aggregated flash bytes %d != sum %d", res.Activity.FlashBytes, flash)
	}
}

func TestShardedScanValidation(t *testing.T) {
	app, _ := workload.ByName("MIR")
	if _, err := ShardedScan(0, app, accel.LevelChannel, ssd.DefaultConfig(), 1000, 0); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := ShardedScan(10, app, accel.LevelChannel, ssd.DefaultConfig(), 5, 0); err == nil {
		t.Error("more devices than features accepted")
	}
}

func TestShardedScanUnsupportedPropagates(t *testing.T) {
	reid, _ := workload.ByName("ReId")
	if _, err := ShardedScan(2, reid, accel.LevelChip, ssd.DefaultConfig(), 10_000, 500); err == nil {
		t.Error("chip-level ReId sharded scan succeeded")
	}
}
