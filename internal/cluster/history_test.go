package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// HistorySummary aggregates per-replica history stores: every fanned-out
// query appends one record on each shard it touches.
func TestHistorySummaryAggregates(t *testing.T) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, 120, 11)

	opts := core.DefaultOptions()
	opts.History = true
	opts.CacheAdmission = core.AdmissionLearned
	opts.HistoryMineInterval = 2
	const shards = 3
	e, err := NewEngines(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}

	const queries = 5
	for q := 0; q < queries; q++ {
		if _, err := e.Query(db.Vectors[q], 4); err != nil {
			t.Fatal(err)
		}
	}
	hs := e.HistorySummary()
	if hs.Records != queries*shards {
		t.Fatalf("cluster history holds %d records, want %d", hs.Records, queries*shards)
	}
	if hs.HotBytes == 0 || hs.ColdBytes == 0 {
		t.Fatalf("empty history regions: %+v", hs)
	}
}

// A history-off cluster aggregates to zeros.
func TestHistorySummaryDisabled(t *testing.T) {
	e, db := enginesFixture(t, 2, 60)
	if _, err := e.Query(db.Vectors[0], 3); err != nil {
		t.Fatal(err)
	}
	if hs := e.HistorySummary(); hs != (core.HistoryStats{}) {
		t.Fatalf("history-off cluster reported %+v", hs)
	}
}
