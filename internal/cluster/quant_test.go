package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// quantClusterOpts: the pruning suite's small device with the quantized
// two-pass path enabled on every shard engine.
func quantClusterOpts(quantized bool, margin int) core.Options {
	opts := pruneClusterOpts(false)
	opts.Quantized = quantized
	opts.RerankMargin = margin
	return opts
}

// TestEnginesQuantTwoPassAggregates: a quantized two-pass cluster answers
// bit-identically to an fp32 cluster of the same deployment, for both the
// per-query and shared-sweep fan-out paths — each shard runs its own int8
// candidate scan and fp32 rerank, and the global merge sees exact scores.
func TestEnginesQuantTwoPassAggregates(t *testing.T) {
	const features, k = 262, 3
	net := nn.MustNetwork("cluster-quant-scn", tensor.Shape{8}, nn.CombineHadamard,
		nn.NewFC("fc1", 8, 4, nn.ActReLU),
		nn.NewFC("fc2", 4, 1, nn.ActNone))
	net.InitRandom(3)
	vectors := pruneClusterVectors(features, 37)

	build := func(quantized bool) *Engines {
		e, err := NewEngines(2, quantClusterOpts(quantized, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.WriteDB(vectors); err != nil {
			t.Fatal(err)
		}
		if err := e.LoadModel(net); err != nil {
			t.Fatal(err)
		}
		return e
	}
	quant := build(true)
	dense := build(false)
	sharedQuant := build(true)

	qfvs := [][]float32{vectors[0], vectors[130], vectors[261]}
	qAns, err := quant.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	dAns, err := dense.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	sAns, err := sharedQuant.QueriesShared(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qfvs {
		if len(qAns[i].TopK) != len(dAns[i].TopK) {
			t.Fatalf("query %d: quant %d entries, dense %d", i, len(qAns[i].TopK), len(dAns[i].TopK))
		}
		for j := range dAns[i].TopK {
			if qAns[i].TopK[j] != dAns[i].TopK[j] {
				t.Fatalf("query %d entry %d: quant %+v != dense %+v", i, j, qAns[i].TopK[j], dAns[i].TopK[j])
			}
			if sAns[i].TopK[j] != dAns[i].TopK[j] {
				t.Fatalf("query %d entry %d: shared quant %+v != dense %+v", i, j, sAns[i].TopK[j], dAns[i].TopK[j])
			}
		}
	}
}
