package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// replicatedFixture builds a shards×replicas cluster over a TextQA feature
// database.
func replicatedFixture(t *testing.T, shards, replicas, features int) (*Engines, *workload.FeatureDB) {
	t.Helper()
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	e, err := NewReplicatedEngines(shards, replicas, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	return e, db
}

// expectedReplicaPlans mirrors the replicated routing/injection schedule of
// Engines.run: call c rotates the first replica to c mod R, replica 0 draws
// the legacy "call<c>-shard<s>" stream and replica r>0 draws
// "call<c>-shard<s>-rep<r>", draws stop at the first healthy replica. It
// returns, per shard: the serving replica (-1 when every replica faulted)
// and the number of failovers taken.
func expectedReplicaPlans(tol Tolerance, call uint64, shards, replicas int) (serving []int, failovers int) {
	root := fault.New(tol.FaultSeed)
	for s := 0; s < shards; s++ {
		rot := 0
		if replicas > 1 {
			rot = int(call % uint64(replicas))
		}
		serve := -1
		for a := 0; a < replicas; a++ {
			rep := (rot + a) % replicas
			var inj *fault.Injector
			if rep == 0 {
				inj = root.Forkf("call%d-shard%d", call, s)
			} else {
				inj = root.Forkf("call%d-shard%d-rep%d", call, s, rep)
			}
			faulted := inj.Hit(tol.FaultRate)
			inj.Hit(tol.DelayRate)
			if !faulted {
				serve = rep
				break
			}
			if a < replicas-1 {
				failovers++
			}
		}
		serving = append(serving, serve)
	}
	return serving, failovers
}

// TestReplicatedEnginesSurviveFaults is the replication acceptance test: a
// 2×2 cluster at a 25% per-replica fault rate answers every call without
// degradation whenever each shard keeps at least one healthy replica —
// failover routes around the faulted replicas — and every answer is
// bit-identical to a fault-free cluster's. The failover schedule matches
// the documented injection contract and repeats bit for bit across runs.
func TestReplicatedEnginesSurviveFaults(t *testing.T) {
	const shards, replicas, features, k, calls = 2, 2, 300, 5, 16
	tol := Tolerance{FaultRate: 0.25, FaultSeed: 4}

	// The seed must exercise failover (a faulted first replica rescued by
	// its sibling) and keep at least one healthy replica per shard in every
	// call, so no answer degrades.
	var wantFailovers int
	sawFailover := false
	for c := 0; c < calls; c++ {
		serving, f := expectedReplicaPlans(tol, uint64(c), shards, replicas)
		wantFailovers += f
		if f > 0 {
			sawFailover = true
		}
		for s, rep := range serving {
			if rep < 0 {
				t.Fatalf("seed %d call %d kills every replica of shard %d; pick another seed",
					tol.FaultSeed, c, s)
			}
		}
	}
	if !sawFailover {
		t.Fatalf("seed %d never exercises failover; pick another seed", tol.FaultSeed)
	}

	clean, db := replicatedFixture(t, shards, 1, features)
	run := func() [][]float32 {
		t.Helper()
		e, _ := replicatedFixture(t, shards, replicas, features)
		if err := e.SetTolerance(tol); err != nil {
			t.Fatal(err)
		}
		var scores [][]float32
		for c := 0; c < calls; c++ {
			ans, err := e.Query(db.Vectors[c], k)
			if err != nil {
				t.Fatalf("call %d: %v", c, err)
			}
			if ans.Degraded || len(ans.FailedShards) != 0 {
				t.Fatalf("call %d degraded (%v) despite surviving replicas", c, ans.FailedShards)
			}
			ref, err := clean.Query(db.Vectors[c], k)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.TopK) != len(ref.TopK) {
				t.Fatalf("call %d: %d entries, fault-free cluster %d", c, len(ans.TopK), len(ref.TopK))
			}
			row := make([]float32, len(ans.TopK))
			for i := range ans.TopK {
				if ans.TopK[i].FeatureID != ref.TopK[i].FeatureID || ans.TopK[i].Score != ref.TopK[i].Score {
					t.Fatalf("call %d entry %d: replicated (%d, %v) != fault-free (%d, %v)",
						c, i, ans.TopK[i].FeatureID, ans.TopK[i].Score, ref.TopK[i].FeatureID, ref.TopK[i].Score)
				}
				row[i] = ans.TopK[i].Score
			}
			scores = append(scores, row)
		}
		snap := e.MetricsSnapshot()
		if got := snap.Counters["cluster_failovers"]; got != int64(wantFailovers) {
			t.Fatalf("cluster_failovers = %d, schedule predicts %d", got, wantFailovers)
		}
		if snap.Counters["cluster_degraded_answers"] != 0 {
			t.Fatal("degraded answers recorded despite full failover coverage")
		}
		return scores
	}
	a, b := run(), run()
	for c := range a {
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("call %d entry %d: runs diverged", c, i)
			}
		}
	}
}

// TestReplicatedEnginesAllReplicasFail: when every replica of a shard
// faults, the shard fails over to nothing and the answer degrades exactly
// as an unreplicated faulted shard would.
func TestReplicatedEnginesAllReplicasFail(t *testing.T) {
	e, db := replicatedFixture(t, 2, 2, 200)
	if err := e.SetTolerance(Tolerance{FaultRate: 1, FaultSeed: 3}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query(db.Vectors[0], 3)
	if err == nil {
		t.Fatal("all-replicas-failed query succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
	// Four injected faults: both replicas of both shards.
	if got := e.MetricsSnapshot().Counters["cluster_injected_faults"]; got != 4 {
		t.Fatalf("cluster_injected_faults = %d, want 4", got)
	}
}

// TestReplicatedEnginesRotation: with no faults the router rotates the
// serving replica with the call counter, so every replica of a 1×3 group
// ends up serving (its simulated clock advances) while answers stay
// identical call over call.
func TestReplicatedEnginesRotation(t *testing.T) {
	const replicas = 3
	e, db := replicatedFixture(t, 1, replicas, 120)
	var first []int64
	for c := 0; c < replicas; c++ {
		ans, err := e.Query(db.Vectors[7], 4)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, len(ans.TopK))
		for i, entry := range ans.TopK {
			ids[i] = entry.FeatureID
		}
		if c == 0 {
			first = ids
			continue
		}
		for i := range ids {
			if ids[i] != first[i] {
				t.Fatalf("call %d: replica rotation changed the answer (%v vs %v)", c, ids, first)
			}
		}
	}
	for r := 0; r < replicas; r++ {
		if served := e.Replica(0, r).MetricsSnapshot().Counters["core_queries"]; served != 1 {
			t.Fatalf("replica %d served %d queries over %d rotated calls, want 1", r, served, replicas)
		}
	}
}

// TestReplicatedEnginesValidation rejects malformed shapes.
func TestReplicatedEnginesValidation(t *testing.T) {
	if _, err := NewReplicatedEngines(0, 1, core.DefaultOptions()); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewReplicatedEngines(1, 0, core.DefaultOptions()); err == nil {
		t.Error("0 replicas accepted")
	}
}

// TestEnginesInjectableTimeoutDeterministic is the deterministic timeout
// test the wall-clock timer could never support: the timeout clock is
// injected and fired only after the fast shard has answered (the engines
// advance simulated time, so the wall-clock ShardTimeout cannot observe
// simulated latencies — only real stalls). With answers collected before a
// fired timer is honored, the classification is exact: the fast shard
// contributes, the stalled shard times out, and the degraded answer
// repeats bit for bit.
func TestEnginesInjectableTimeoutDeterministic(t *testing.T) {
	const shards, features, k = 2, 200, 5
	tol := Tolerance{
		DelayRate:    0.5,
		Delay:        30 * time.Second, // far beyond the test: only the timeout can classify it
		ShardTimeout: 10 * time.Millisecond,
		FaultSeed:    12,
	}
	_, delayed := expectedEngineFaults(tol, 0, shards)
	if len(delayed) != 1 {
		t.Fatalf("seed %d delays %v of %d shards, want exactly 1; pick another seed", tol.FaultSeed, delayed, shards)
	}
	slow := delayed[0]
	fast := 1 - slow

	run := func() ([]int64, []float32) {
		t.Helper()
		e, db := enginesFixture(t, shards, features)
		// The injected timer fires only once the fast shard has finished
		// executing (its simulated clock has advanced) plus a settle margin
		// for its in-flight channel send — so by firing time its answer is
		// collectable and classification is deterministic.
		fastEng := e.Engine(fast)
		tol.Timer = func(d time.Duration) <-chan time.Time {
			if d != tol.ShardTimeout {
				t.Errorf("timer armed with %v, want %v", d, tol.ShardTimeout)
			}
			fired := make(chan time.Time, 1)
			start := fastEng.Now()
			go func() {
				for fastEng.Now() == start {
					time.Sleep(time.Millisecond)
				}
				time.Sleep(50 * time.Millisecond)
				fired <- time.Time{}
			}()
			return fired
		}
		if err := e.SetTolerance(tol); err != nil {
			t.Fatal(err)
		}
		ans, err := e.Query(db.Vectors[9], k)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Degraded {
			t.Fatal("timed-out answer not marked Degraded")
		}
		if len(ans.FailedShards) != 1 || ans.FailedShards[0] != slow {
			t.Fatalf("failed shards %v, want [%d]", ans.FailedShards, slow)
		}
		if !errors.Is(ans.ShardErrs, ErrShardTimeout) {
			t.Fatalf("ShardErrs %v does not wrap ErrShardTimeout", ans.ShardErrs)
		}
		snap := e.MetricsSnapshot()
		if got := snap.Counters["cluster_shard_timeouts"]; got != 1 {
			t.Fatalf("cluster_shard_timeouts = %d, want 1", got)
		}
		if got := snap.Counters["cluster_timeouts"]; got != 1 {
			t.Fatalf("cluster_timeouts = %d, want 1", got)
		}
		ids := make([]int64, len(ans.TopK))
		scores := make([]float32, len(ans.TopK))
		for i, entry := range ans.TopK {
			ids[i], scores[i] = entry.FeatureID, entry.Score
		}
		return ids, scores
	}
	idsA, scoresA := run()
	idsB, scoresB := run()
	if len(idsA) == 0 {
		t.Fatal("degraded answer empty")
	}
	for i := range idsA {
		if idsA[i] != idsB[i] || scoresA[i] != scoresB[i] {
			t.Fatalf("entry %d: degraded answers diverged across runs", i)
		}
	}
}
