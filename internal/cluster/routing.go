package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
)

// The split-aware routing table. A cluster generation is an immutable
// snapshot of the whole serving topology: the replica groups and an ordered
// list of routes partitioning the global feature space [0, total). Admin
// operations (WriteDB, LoadModel, AppendDB, ReorgShard, rebalance flips)
// build the next generation under the admin mutex and publish it atomically;
// a query snapshots exactly one generation for its entire fan-out/merge, so
// it can never see shard i updated and shard i+1 stale, and during a live
// move every feature index has exactly one authoritative owner.

// route maps a contiguous global feature range to the shard database slice
// that owns it: global feature g ∈ [global, global+count) lives at local
// index g−global+local of database db on every replica of shard.
type route struct {
	shard  int
	db     ftl.DBID
	model  core.ModelID
	global int64
	local  int64
	count  int64
}

// clusterState is one published generation. All fields are immutable after
// publication (slices are fresh copies); routes is nil until both WriteDB
// and LoadModel have completed, and is always sorted by global, covering
// [0, total) without gap or overlap.
type clusterState struct {
	gen    uint64
	groups [][]*core.DeepStore
	routes []route
	total  int64
}

// RouteInfo is the exported description of one routing-table entry
// (inspection, tests, and the rebalance bench).
type RouteInfo struct {
	// Shard owns the range; DB is the shard-local database holding it.
	Shard int
	DB    ftl.DBID
	// Global is the first global feature index of the range, Local its
	// index inside DB, Count the range length.
	Global, Local, Count int64
}

// Gen returns the current routing-table generation. Every published change
// — data, model, topology, or a rebalance flip — bumps it by one.
func (e *Engines) Gen() uint64 { return e.state.Load().gen }

// Routes returns the current routing table in global order (empty until
// WriteDB and LoadModel have both completed).
func (e *Engines) Routes() []RouteInfo {
	st := e.state.Load()
	out := make([]RouteInfo, len(st.routes))
	for i, r := range st.routes {
		out[i] = RouteInfo{Shard: r.shard, DB: r.db, Global: r.global, Local: r.local, Count: r.count}
	}
	return out
}

// Features returns the global feature count of the routed database.
func (e *Engines) Features() int64 { return e.state.Load().total }

// publishLocked builds the next generation from the admin-side state and
// publishes it atomically. Routes go live only once every routed shard has a
// model; until then queries keep failing with the need-WriteDB/LoadModel
// error rather than seeing a half-initialized table. Callers hold e.admin.
func (e *Engines) publishLocked() {
	prev := e.state.Load()
	st := &clusterState{total: e.total}
	if prev != nil {
		st.gen = prev.gen + 1
	}
	st.groups = make([][]*core.DeepStore, len(e.groups))
	for s, g := range e.groups {
		st.groups[s] = append([]*core.DeepStore(nil), g...)
	}
	ready := len(e.routes) > 0
	for _, rt := range e.routes {
		if e.models[rt.shard] == 0 {
			ready = false
			break
		}
	}
	if ready {
		st.routes = make([]route, len(e.routes))
		for i, rt := range e.routes {
			rt.model = e.models[rt.shard]
			st.routes[i] = rt
		}
	}
	e.state.Store(st)
}

// splitForMove carves [globalStart, globalStart+n) out of its containing
// route and hands it to moved (the destination's fresh database, local 0).
// The input slice is not modified; the result keeps global order, so the
// published table stays a partition — the atomicity of a per-range flip.
func splitForMove(routes []route, globalStart, n int64, moved route) ([]route, error) {
	idx := -1
	for i, rt := range routes {
		if rt.global <= globalStart && globalStart+n <= rt.global+rt.count {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("cluster: range [%d, %d) does not lie within one route",
			globalStart, globalStart+n)
	}
	rt := routes[idx]
	out := make([]route, 0, len(routes)+2)
	out = append(out, routes[:idx]...)
	if pre := globalStart - rt.global; pre > 0 {
		out = append(out, route{shard: rt.shard, db: rt.db, global: rt.global, local: rt.local, count: pre})
	}
	moved.global = globalStart
	moved.count = n
	out = append(out, moved)
	if post := rt.global + rt.count - (globalStart + n); post > 0 {
		out = append(out, route{
			shard: rt.shard, db: rt.db,
			global: globalStart + n,
			local:  rt.local + (globalStart - rt.global) + n,
			count:  post,
		})
	}
	out = append(out, routes[idx+1:]...)
	return out, nil
}
