package cluster

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// Satellite regression for the WriteDB/LoadModel vs Query interleaving bug:
// admin updates used to land shard by shard with no generation boundary, so
// a concurrent query could fan out over shard 0's NEW database and shard
// 1's OLD one and merge a chimera answer. With atomic generation publish, a
// query snapshots one complete topology: every answer must now be exactly
// the old cluster's answer or exactly the new one, never a mixture. Run
// under -race (CI does) to also catch unsynchronized state.

// answerKey flattens a ranking for set membership (ObjectIDs excluded: they
// are physical addresses and differ across placements).
func answerKey(a Answer) string {
	s := ""
	for _, e := range a.TopK {
		s += fmt.Sprintf("%d:%x;", e.FeatureID, e.Score)
	}
	return s
}

// refAnswer builds a fresh identical cluster over vecs and answers q once.
func refAnswer(t *testing.T, app *workload.App, vecs [][]float32, q []float32, k int) Answer {
	t.Helper()
	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(vecs); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(q, k)
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

// TestWriteDBRacingQueries races alternating WriteDB(A)/WriteDB(B) against
// concurrent queries: every answer must be bit-identical to the A-cluster's
// answer or the B-cluster's answer.
func TestWriteDBRacingQueries(t *testing.T) {
	const features, k, writes, readers, reads = 60, 5, 8, 4, 25
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	dbA := workload.NewFeatureDB(app, features, 11)
	dbB := workload.NewFeatureDB(app, features, 23)
	probe := dbA.Vectors[7]

	wantA := answerKey(refAnswer(t, app, dbA.Vectors, probe, k))
	wantB := answerKey(refAnswer(t, app, dbB.Vectors, probe, k))
	if wantA == wantB {
		t.Fatal("databases A and B answer identically; the test cannot detect mixtures")
	}

	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(dbA.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := e.Query(probe, k)
				if err != nil {
					errs <- err
					return
				}
				if got := answerKey(ans); got != wantA && got != wantB {
					errs <- fmt.Errorf("read %d merged a mixture of generations:\n got %s\nwantA %s\nwantB %s",
						i, got, wantA, wantB)
					return
				}
			}
		}()
	}
	for w := 0; w < writes; w++ {
		vecs := dbA.Vectors
		if w%2 == 0 {
			vecs = dbB.Vectors
		}
		if err := e.WriteDB(vecs); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLoadModelRacingQueries races model swaps against queries: two
// differently initialized SCNs score the same database differently, and
// every concurrent answer must match exactly one of the two single-model
// clusters.
func TestLoadModelRacingQueries(t *testing.T) {
	const features, k, swaps, readers, reads = 60, 5, 6, 4, 20
	appA, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	appA.SCN.InitRandom(1)
	appB, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	appB.SCN.InitRandom(2)
	db := workload.NewFeatureDB(appA, features, 11)
	probe := db.Vectors[3]

	wantA := answerKey(refAnswer(t, appA, db.Vectors, probe, k))
	wantB := answerKey(refAnswer(t, appB, db.Vectors, probe, k))
	if wantA == wantB {
		t.Fatal("models A and B answer identically; the test cannot detect mixtures")
	}

	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(appA.SCN); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				ans, err := e.Query(probe, k)
				if err != nil {
					errs <- err
					return
				}
				if got := answerKey(ans); got != wantA && got != wantB {
					errs <- fmt.Errorf("read %d merged a mixture of models:\n got %s\nwantA %s\nwantB %s",
						i, got, wantA, wantB)
					return
				}
			}
		}()
	}
	for w := 0; w < swaps; w++ {
		net := appA.SCN
		if w%2 == 0 {
			net = appB.SCN
		}
		if err := e.LoadModel(net); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueriesRacingRebalanceSteps races query goroutines against a
// rebalancer stepping on another goroutine: every answer must equal the
// unsplit oracle's, whatever generation it snapshotted.
func TestQueriesRacingRebalanceSteps(t *testing.T) {
	const features, k, readers, reads = 120, 5, 4, 15
	live, oracle, db := rebalanceFixture(t, 2, features, core.DefaultOptions())
	probes := []int{0, 15, 45, 90}
	want := make([]string, len(probes))
	for i, p := range probes {
		ans, err := oracle.Query(db.Vectors[p], k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = answerKey(ans)
	}
	rb, err := NewRebalancer(live, MoveSpec{Source: 0, Dest: AddShard, Start: 10, Count: 40, ChunkFeatures: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				pi := (r + i) % len(probes)
				ans, err := live.Query(db.Vectors[probes[pi]], k)
				if err != nil {
					errs <- err
					return
				}
				if got := answerKey(ans); got != want[pi] {
					errs <- fmt.Errorf("reader %d probe %d diverged mid-migration:\n got %s\nwant %s",
						r, probes[pi], got, want[pi])
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			done, err := rb.Step()
			if err != nil {
				errs <- err
				return
			}
			if done {
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if live.Shards() != 3 {
		t.Fatalf("%d shards after the race, want 3", live.Shards())
	}
	assertPartition(t, live, features)
	if n := live.MetricsSnapshot().Counters["cluster_stage_sum_mismatch"]; n != 0 {
		t.Fatalf("stage-sum invariant broke %d times", n)
	}
}
