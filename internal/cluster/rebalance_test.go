package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// rebalanceFixture builds a live sharded cluster and a 1-shard oracle over
// the same database with the same options.
func rebalanceFixture(t *testing.T, shards, features int, opts core.Options) (*Engines, *Engines, *workload.FeatureDB) {
	t.Helper()
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	build := func(n int) *Engines {
		e, err := NewEngines(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.WriteDB(db.Vectors); err != nil {
			t.Fatal(err)
		}
		if err := e.LoadModel(app.SCN); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return build(shards), build(1), db
}

// assertSameTopK compares two answers' rankings. ObjectIDs are physical
// flash addresses and legitimately differ between placements, so the
// bit-identical guarantee covers (FeatureID, Score).
func assertSameTopK(t *testing.T, label string, got, want Answer) {
	t.Helper()
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("%s: %d entries, want %d", label, len(got.TopK), len(want.TopK))
	}
	for j := range want.TopK {
		if got.TopK[j].FeatureID != want.TopK[j].FeatureID || got.TopK[j].Score != want.TopK[j].Score {
			t.Fatalf("%s entry %d: (%d, %v) != (%d, %v)", label, j,
				got.TopK[j].FeatureID, got.TopK[j].Score, want.TopK[j].FeatureID, want.TopK[j].Score)
		}
	}
}

// TestQueriesRacingMigration is the migration-correctness suite: across
// every scan mode, with and without the pruning tier and the two-pass
// quantized path, and across batch sizes Q ∈ {1, 7, 64}, queries running
// while a chunked migration flips routes under them must (a) stay
// bit-identical to an unsplit oracle, (b) keep every sub-query's stage sum
// equal to its latency, and (c) conserve scanned+skipped features across
// the split boundary.
func TestQueriesRacingMigration(t *testing.T) {
	const features, k = 330, 5
	type variant struct {
		name string
		mut  func(*core.Options)
	}
	variants := []variant{
		{"dense", func(o *core.Options) {}},
		{"prune", func(o *core.Options) { o.Prune = true; o.PruneStripeFeatures = 16 }},
		{"quant-rerank", func(o *core.Options) { o.Quantized = true; o.RerankMargin = 4 }},
		{"prune-quant-rerank", func(o *core.Options) {
			o.Prune = true
			o.PruneStripeFeatures = 16
			o.Quantized = true
			o.RerankMargin = 4
		}},
	}
	for _, mode := range []core.ScanMode{core.ScanBatched, core.ScanPerFeature, core.ScanSerial} {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%v/%s", mode, v.name), func(t *testing.T) {
				opts := core.DefaultOptions()
				opts.Scan = mode
				v.mut(&opts)
				live, oracle, db := rebalanceFixture(t, 2, features, opts)

				// Move a mid-range window out of shard 0 in 3 chunks,
				// stepping between query batches so the batches observe
				// pre-move, mid-move (split routes), and post-move
				// generations.
				rb, err := NewRebalancer(live, MoveSpec{
					Source: 0, Dest: AddShard, Start: 40, Count: 90, ChunkFeatures: 30,
				})
				if err != nil {
					t.Fatal(err)
				}
				done := false
				step := func() {
					if done {
						return
					}
					var err error
					if done, err = rb.Step(); err != nil {
						t.Fatal(err)
					}
				}
				qi := 0
				for _, q := range []int{1, 7, 64} {
					qfvs := make([][]float32, q)
					for i := range qfvs {
						qfvs[i] = db.Vectors[(qi*37)%features]
						qi++
					}
					la, err := live.QueriesShared(qfvs, k)
					if err != nil {
						t.Fatal(err)
					}
					oa, err := oracle.QueriesShared(qfvs, k)
					if err != nil {
						t.Fatal(err)
					}
					for i := range la {
						assertSameTopK(t, fmt.Sprintf("Q=%d query %d", q, i), la[i], oa[i])
						if got := la[i].FeaturesScanned + la[i].Prune.FeaturesSkipped; got != int64(features) {
							t.Fatalf("Q=%d query %d: scanned %d + skipped %d = %d, want %d",
								q, i, la[i].FeaturesScanned, la[i].Prune.FeaturesSkipped, got, features)
						}
						if la[i].Makespan <= 0 {
							t.Fatalf("Q=%d query %d: non-positive makespan", q, i)
						}
					}
					step()
				}
				for !done {
					step()
				}
				// Finished: 4 routes (0..40 | moved 40..130 | 130..165 | shard 1).
				if live.Shards() != 3 {
					t.Fatalf("%d shards after AddShard move, want 3", live.Shards())
				}
				assertPartition(t, live, int64(features))
				// Post-move queries still match, including ranges on the new
				// shard.
				la, err := live.Queries([][]float32{db.Vectors[41], db.Vectors[129]}, k)
				if err != nil {
					t.Fatal(err)
				}
				oa, err := oracle.Queries([][]float32{db.Vectors[41], db.Vectors[129]}, k)
				if err != nil {
					t.Fatal(err)
				}
				for i := range la {
					assertSameTopK(t, fmt.Sprintf("post-move query %d", i), la[i], oa[i])
				}
				if n := live.MetricsSnapshot().Counters["cluster_stage_sum_mismatch"]; n != 0 {
					t.Fatalf("stage-sum invariant broke %d times during migration", n)
				}
			})
		}
	}
}

// assertPartition checks the routing table is sorted and covers [0, total)
// without gap or overlap.
func assertPartition(t *testing.T, e *Engines, total int64) {
	t.Helper()
	routes := e.Routes()
	if len(routes) == 0 {
		t.Fatal("empty routing table")
	}
	var at int64
	for i, r := range routes {
		if r.Global != at {
			t.Fatalf("route %d starts at %d, want %d (gap or overlap)", i, r.Global, at)
		}
		if r.Count < 1 {
			t.Fatalf("route %d empty", i)
		}
		at += r.Count
	}
	if at != total {
		t.Fatalf("routes cover [0, %d), want [0, %d)", at, total)
	}
	if e.Features() != total {
		t.Fatalf("Features() = %d, want %d", e.Features(), total)
	}
}

// TestRebalanceToExistingShard moves a range between the two original
// shards (no topology growth) and checks answers and accounting.
func TestRebalanceToExistingShard(t *testing.T) {
	const features, k = 240, 5
	live, oracle, db := rebalanceFixture(t, 2, features, core.DefaultOptions())
	rep, err := live.Rebalance(MoveSpec{Source: 0, Dest: 1, Start: 0, Count: 60, ChunkFeatures: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 60 || rep.Chunks != 3 {
		t.Fatalf("moved %d in %d chunks, want 60 in 3", rep.Moved, rep.Chunks)
	}
	if rep.Dest != 1 {
		t.Fatalf("dest %d, want 1", rep.Dest)
	}
	if rep.SrcRead <= 0 || rep.DstWrite <= 0 {
		t.Fatalf("migration device time src=%v dst=%v, want both > 0", rep.SrcRead, rep.DstWrite)
	}
	if live.Shards() != 2 {
		t.Fatalf("%d shards, want 2 (moved to an existing shard)", live.Shards())
	}
	assertPartition(t, live, features)
	// The source primary charged migration reads; the destination's engine
	// holds the chunk databases.
	src := live.Engine(0).MetricsSnapshot().Counters
	if src["core_migrate_reads"] != 3 || src["core_migrate_features_out"] != 60 {
		t.Fatalf("source migration counters %d reads / %d features, want 3 / 60",
			src["core_migrate_reads"], src["core_migrate_features_out"])
	}
	if src["core_migrate_pages_out"] <= 0 {
		t.Fatal("no migration pages charged on the source")
	}
	for _, q := range []int{0, 30, 59, 60, 150} {
		la, err := live.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := oracle.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, fmt.Sprintf("query %d", q), la, oa)
	}
}

// TestRebalanceInterlocks: while a Rebalancer is active every admin path is
// rejected — cluster-level ops with ErrRebalanceActive, source-database
// mutations with core.ErrMigrating — and all of them work again after the
// move completes.
func TestRebalanceInterlocks(t *testing.T) {
	const features = 200
	live, _, db := rebalanceFixture(t, 2, features, core.DefaultOptions())
	rb, err := NewRebalancer(live, MoveSpec{Source: 0, Dest: AddShard, Start: 10, Count: 40, ChunkFeatures: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.WriteDB(db.Vectors); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("WriteDB during rebalance: %v, want ErrRebalanceActive", err)
	}
	if err := live.AppendDB(db.Vectors[:4]); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("AppendDB during rebalance: %v, want ErrRebalanceActive", err)
	}
	if err := live.ReorgShard(1, nil); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("ReorgShard during rebalance: %v, want ErrRebalanceActive", err)
	}
	app, _ := workload.ByName("TextQA")
	if err := live.LoadModel(app.SCN); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("LoadModel during rebalance: %v, want ErrRebalanceActive", err)
	}
	if _, err := NewRebalancer(live, MoveSpec{Source: 1, Dest: AddShard, Start: 120, Count: 10}); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("second Rebalancer: %v, want ErrRebalanceActive", err)
	}
	// The source database itself is interlocked on every replica.
	srcDB := live.Routes()[0].DB
	if err := live.Engine(0).AppendDB(srcDB, db.Vectors[:1]); !errors.Is(err, core.ErrMigrating) {
		t.Fatalf("source AppendDB during migration: %v, want core.ErrMigrating", err)
	}
	if err := live.Engine(0).DeleteDB(srcDB); !errors.Is(err, core.ErrMigrating) {
		t.Fatalf("source DeleteDB during migration: %v, want core.ErrMigrating", err)
	}
	for done := false; !done; {
		if done, err = rb.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Released: the tail shard's append path works again (shard 1 owns the
	// tail route and was untouched by the move).
	if err := live.AppendDB(db.Vectors[:4]); err != nil {
		t.Fatal(err)
	}
	assertPartition(t, live, features+4)
}

// TestRebalanceAbort: aborting after one of three chunks keeps the flipped
// chunk on the destination (still answering correctly) and releases every
// interlock; aborting before any chunk removes a freshly added shard again.
func TestRebalanceAbort(t *testing.T) {
	const features, k = 240, 5
	live, oracle, db := rebalanceFixture(t, 2, features, core.DefaultOptions())

	rb, err := NewRebalancer(live, MoveSpec{Source: 0, Dest: AddShard, Start: 20, Count: 90, ChunkFeatures: 30})
	if err != nil {
		t.Fatal(err)
	}
	if done, err := rb.Step(); err != nil || done {
		t.Fatalf("first chunk: done=%v err=%v", done, err)
	}
	rb.Abort()
	rep := rb.Report()
	if rep.Moved != 30 {
		t.Fatalf("aborted after %d features, want 30", rep.Moved)
	}
	if live.Shards() != 3 {
		t.Fatalf("%d shards, want 3 (dest received a chunk, cannot be removed)", live.Shards())
	}
	assertPartition(t, live, features)
	for _, q := range []int{0, 25, 49, 50, 120} {
		la, err := live.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := oracle.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, fmt.Sprintf("post-abort query %d", q), la, oa)
	}
	// Interlocks released: a new move can start; abort it untouched and the
	// added shard is removed again.
	rb2, err := NewRebalancer(live, MoveSpec{Source: 1, Dest: AddShard, Start: 150, Count: 30})
	if err != nil {
		t.Fatal(err)
	}
	if live.Shards() != 4 {
		t.Fatalf("%d shards with second move pending, want 4", live.Shards())
	}
	rb2.Abort()
	if live.Shards() != 3 {
		t.Fatalf("%d shards after clean abort, want 3 (unused shard removed)", live.Shards())
	}
	assertPartition(t, live, features)
}

// TestRebalanceValidation: malformed specs are rejected up front.
func TestRebalanceValidation(t *testing.T) {
	const features = 200
	live, _, _ := rebalanceFixture(t, 2, features, core.DefaultOptions())
	bad := []MoveSpec{
		{Source: 0, Dest: AddShard, Start: 0, Count: 0},                     // empty
		{Source: 0, Dest: AddShard, Start: 0, Count: -1},                    // negative
		{Source: 0, Dest: AddShard, Start: 50, Count: 100},                  // spans two routes
		{Source: 0, Dest: AddShard, Start: 150, Count: 100},                 // past the end
		{Source: 1, Dest: AddShard, Start: 0, Count: 10},                    // wrong owner
		{Source: 0, Dest: 0, Start: 0, Count: 10},                           // dest == source
		{Source: 0, Dest: 7, Start: 0, Count: 10},                           // no such shard
		{Source: 0, Dest: -2, Start: 0, Count: 10},                          // bad sentinel
		{Source: 0, Dest: AddShard, Start: 0, Count: 10, ChunkFeatures: -5}, // bad chunk
	}
	for i, spec := range bad {
		if _, err := NewRebalancer(live, spec); err == nil {
			t.Errorf("spec %d (%+v) accepted", i, spec)
		}
	}
	if live.Shards() != 2 {
		t.Fatalf("rejected specs changed the topology: %d shards", live.Shards())
	}
	if live.MetricsSnapshot().Counters["cluster_migrate_chunks"] != 0 {
		t.Fatal("rejected specs migrated chunks")
	}
}

// TestPlanRebalance: demand concentrated on one region of shard 0 makes the
// planner propose moving exactly that region's window.
func TestPlanRebalance(t *testing.T) {
	const features, k = 240, 5
	live, _, db := rebalanceFixture(t, 2, features, core.DefaultOptions())
	if _, err := live.PlanRebalance(10, 2); err == nil {
		t.Fatal("plan with no accumulated demand accepted")
	}
	// Self-queries of features 30..49 concentrate top-K hits around that
	// window of shard 0 (each self-comparison surfaces its own index and
	// near neighbors).
	for q := 30; q < 50; q++ {
		if _, err := live.Query(db.Vectors[q], k); err != nil {
			t.Fatal(err)
		}
	}
	heat := live.Heat()
	if len(heat) != features {
		t.Fatalf("heat profile over %d features, want %d", len(heat), features)
	}
	spec, err := live.PlanRebalance(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Source != 0 || spec.Dest != AddShard {
		t.Fatalf("plan %+v, want a move off shard 0 to a new shard", spec)
	}
	if spec.Count != 20 || spec.ChunkFeatures != 10 {
		t.Fatalf("plan %+v, want a 20-feature window in 10-feature chunks", spec)
	}
	// The chosen window must overlap the hot region.
	if spec.Start >= 50 || spec.Start+spec.Count <= 30 {
		t.Fatalf("plan window [%d, %d) misses the hot region [30, 50)", spec.Start, spec.Start+spec.Count)
	}
	if _, err := live.Rebalance(spec); err != nil {
		t.Fatal(err)
	}
	assertPartition(t, live, features)
}

// TestAppendAfterSplit: cluster appends interleave with migrations — the
// tail route tracks whichever database currently ends the global space, and
// appended features answer identically to an unsplit oracle given the same
// appends.
func TestAppendAfterSplit(t *testing.T) {
	const features, k = 200, 5
	live, oracle, db := rebalanceFixture(t, 2, features, core.DefaultOptions())
	// Move shard 1's tail range to a new shard: the global tail is now the
	// moved chunk's fresh database, which appends must extend.
	if _, err := live.Rebalance(MoveSpec{Source: 1, Dest: AddShard, Start: 160, Count: 40}); err != nil {
		t.Fatal(err)
	}
	extra := db.Vectors[:6]
	if err := live.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	assertPartition(t, live, features+6)
	// Move part of the appended tail onward and append again.
	if _, err := live.Rebalance(MoveSpec{Source: 2, Dest: 0, Start: 186, Count: 20}); err != nil {
		t.Fatal(err)
	}
	if err := live.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	assertPartition(t, live, features+12)
	for _, q := range []int{0, 159, 160, 185, 199} {
		la, err := live.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := oracle.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, fmt.Sprintf("query %d", q), la, oa)
	}
}
