package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func enginesFixture(t *testing.T, shards, features int) (*Engines, *workload.FeatureDB) {
	t.Helper()
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	e, err := NewEngines(shards, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	return e, db
}

// TestEnginesMatchSingleEngine: a 3-shard cluster's merged top-K carries the
// same global feature IDs and scores as one engine holding the whole
// database. ObjectIDs are physical flash addresses and legitimately differ
// across deployments, so they are excluded from the comparison.
func TestEnginesMatchSingleEngine(t *testing.T) {
	const features, k = 900, 10
	e, db := enginesFixture(t, 3, features)

	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(1)
	single, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dbID, err := single.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := single.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qid, err := single.Query(core.QuerySpec{QFV: db.Vectors[5], K: k, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}

	ans, err := e.Query(db.Vectors[5], k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.TopK) != len(ref.TopK) {
		t.Fatalf("cluster returned %d entries, single engine %d", len(ans.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		if ans.TopK[i].FeatureID != ref.TopK[i].FeatureID || ans.TopK[i].Score != ref.TopK[i].Score {
			t.Fatalf("entry %d: cluster (%d, %v) != single (%d, %v)", i,
				ans.TopK[i].FeatureID, ans.TopK[i].Score, ref.TopK[i].FeatureID, ref.TopK[i].Score)
		}
	}
	if ans.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if ans.EnergyJ <= 0 {
		t.Error("non-positive energy")
	}
}

// TestEnginesBatchMatchesSingleQueries: the batch path answers exactly like
// one-at-a-time submission.
func TestEnginesBatchMatchesSingleQueries(t *testing.T) {
	const features, k = 600, 5
	e, db := enginesFixture(t, 2, features)
	qfvs := [][]float32{db.Vectors[0], db.Vectors[101], db.Vectors[599]}
	batch, err := e.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qfvs) {
		t.Fatalf("%d answers for %d queries", len(batch), len(qfvs))
	}
	for i, q := range qfvs {
		one, err := e.Query(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(one.TopK) != len(batch[i].TopK) {
			t.Fatalf("query %d: batch %d entries, single %d", i, len(batch[i].TopK), len(one.TopK))
		}
		for j := range one.TopK {
			if batch[i].TopK[j] != one.TopK[j] {
				t.Fatalf("query %d entry %d: batch %+v != single %+v", i, j, batch[i].TopK[j], one.TopK[j])
			}
		}
	}
}

// TestEnginesShardBalance: WriteDB splits a non-divisible database to within
// one feature per shard and remaps the global top-1 correctly (querying a
// vector that lives in the last shard must surface its own global index).
func TestEnginesSelfQueryFindsGlobalIndex(t *testing.T) {
	const features = 301
	e, db := enginesFixture(t, 3, features)
	// Feature 300 lives in the last shard; with a trained-free random SCN the
	// self-comparison is not guaranteed to be rank 1, but the global index
	// must appear with the same score as a single engine gives it.
	ans, err := e.Query(db.Vectors[300], 301)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, entry := range ans.TopK {
		if entry.FeatureID == 300 {
			found = true
		}
		if entry.FeatureID < 0 || entry.FeatureID >= features {
			t.Fatalf("entry has out-of-range global feature ID %d", entry.FeatureID)
		}
	}
	if !found {
		t.Error("global index of the probed feature missing from full top-K")
	}
}

func TestEnginesValidation(t *testing.T) {
	if _, err := NewEngines(0, core.DefaultOptions()); err == nil {
		t.Error("zero engines accepted")
	}
	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Queries([][]float32{{1}}, 1); err == nil {
		t.Error("query before WriteDB/LoadModel accepted")
	}
	if err := e.WriteDB([][]float32{{1, 2}}); err == nil {
		t.Error("fewer features than shards accepted")
	}
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, 64, 5)
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Queries(nil, 5); err == nil {
		t.Error("empty batch accepted")
	}
	if e.Shards() != 2 {
		t.Errorf("Shards() = %d", e.Shards())
	}
	if e.Engine(0) == nil || e.Engine(1) == nil {
		t.Error("nil shard engine")
	}
}
