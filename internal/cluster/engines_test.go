package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func enginesFixture(t *testing.T, shards, features int) (*Engines, *workload.FeatureDB) {
	t.Helper()
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	e, err := NewEngines(shards, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	return e, db
}

// TestEnginesMatchSingleEngine: a 3-shard cluster's merged top-K carries the
// same global feature IDs and scores as one engine holding the whole
// database. ObjectIDs are physical flash addresses and legitimately differ
// across deployments, so they are excluded from the comparison.
func TestEnginesMatchSingleEngine(t *testing.T) {
	const features, k = 900, 10
	e, db := enginesFixture(t, 3, features)

	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(1)
	single, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dbID, err := single.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := single.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qid, err := single.Query(core.QuerySpec{QFV: db.Vectors[5], K: k, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}

	ans, err := e.Query(db.Vectors[5], k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.TopK) != len(ref.TopK) {
		t.Fatalf("cluster returned %d entries, single engine %d", len(ans.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		if ans.TopK[i].FeatureID != ref.TopK[i].FeatureID || ans.TopK[i].Score != ref.TopK[i].Score {
			t.Fatalf("entry %d: cluster (%d, %v) != single (%d, %v)", i,
				ans.TopK[i].FeatureID, ans.TopK[i].Score, ref.TopK[i].FeatureID, ref.TopK[i].Score)
		}
	}
	if ans.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if ans.EnergyJ <= 0 {
		t.Error("non-positive energy")
	}
}

// TestEnginesBatchMatchesSingleQueries: the batch path answers exactly like
// one-at-a-time submission.
func TestEnginesBatchMatchesSingleQueries(t *testing.T) {
	const features, k = 600, 5
	e, db := enginesFixture(t, 2, features)
	qfvs := [][]float32{db.Vectors[0], db.Vectors[101], db.Vectors[599]}
	batch, err := e.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qfvs) {
		t.Fatalf("%d answers for %d queries", len(batch), len(qfvs))
	}
	for i, q := range qfvs {
		one, err := e.Query(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(one.TopK) != len(batch[i].TopK) {
			t.Fatalf("query %d: batch %d entries, single %d", i, len(batch[i].TopK), len(one.TopK))
		}
		for j := range one.TopK {
			if batch[i].TopK[j] != one.TopK[j] {
				t.Fatalf("query %d entry %d: batch %+v != single %+v", i, j, batch[i].TopK[j], one.TopK[j])
			}
		}
	}
}

// TestEnginesShardBalance: WriteDB splits a non-divisible database to within
// one feature per shard and remaps the global top-1 correctly (querying a
// vector that lives in the last shard must surface its own global index).
func TestEnginesSelfQueryFindsGlobalIndex(t *testing.T) {
	const features = 301
	e, db := enginesFixture(t, 3, features)
	// Feature 300 lives in the last shard; with a trained-free random SCN the
	// self-comparison is not guaranteed to be rank 1, but the global index
	// must appear with the same score as a single engine gives it.
	ans, err := e.Query(db.Vectors[300], 301)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, entry := range ans.TopK {
		if entry.FeatureID == 300 {
			found = true
		}
		if entry.FeatureID < 0 || entry.FeatureID >= features {
			t.Fatalf("entry has out-of-range global feature ID %d", entry.FeatureID)
		}
	}
	if !found {
		t.Error("global index of the probed feature missing from full top-K")
	}
}

func TestEnginesValidation(t *testing.T) {
	if _, err := NewEngines(0, core.DefaultOptions()); err == nil {
		t.Error("zero engines accepted")
	}
	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Queries([][]float32{{1}}, 1); err == nil {
		t.Error("query before WriteDB/LoadModel accepted")
	}
	if err := e.WriteDB([][]float32{{1, 2}}); err == nil {
		t.Error("fewer features than shards accepted")
	}
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, 64, 5)
	if err := e.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModel(app.SCN); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Queries(nil, 5); err == nil {
		t.Error("empty batch accepted")
	}
	if e.Shards() != 2 {
		t.Errorf("Shards() = %d", e.Shards())
	}
	if e.Engine(0) == nil || e.Engine(1) == nil {
		t.Error("nil shard engine")
	}
}

// TestEnginesSharedMatchesQueries: QueriesShared answers — top-K entries,
// per-query makespan, and energy — match the per-query fan-out on an
// identically built cluster, while each shard issues one simulated scan per
// batch instead of one per query.
func TestEnginesSharedMatchesQueries(t *testing.T) {
	const features, k = 600, 5
	perQuery, db := enginesFixture(t, 3, features)
	sharedC, _ := enginesFixture(t, 3, features)
	qfvs := [][]float32{db.Vectors[0], db.Vectors[101], db.Vectors[599], db.Vectors[7]}

	want, err := perQuery.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharedC.QueriesShared(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].TopK) != len(want[i].TopK) {
			t.Fatalf("query %d: shared %d entries, per-query %d", i, len(got[i].TopK), len(want[i].TopK))
		}
		for j := range want[i].TopK {
			if got[i].TopK[j] != want[i].TopK[j] {
				t.Fatalf("query %d entry %d: shared %+v != per-query %+v", i, j, got[i].TopK[j], want[i].TopK[j])
			}
		}
		if got[i].Makespan != want[i].Makespan {
			t.Fatalf("query %d: makespan %v != %v", i, got[i].Makespan, want[i].Makespan)
		}
		if got[i].EnergyJ != want[i].EnergyJ {
			t.Fatalf("query %d: energy %v != %v", i, got[i].EnergyJ, want[i].EnergyJ)
		}
		if got[i].Degraded {
			t.Fatalf("query %d: unexpectedly degraded", i)
		}
	}
	if n := sharedC.MetricsSnapshot().Counters["cluster_shared_batches"]; n != 1 {
		t.Fatalf("cluster_shared_batches = %d, want 1", n)
	}
	// Each shard's engine ran one shared scan for the whole batch; the
	// per-query cluster paid one scan per query.
	for s := 0; s < sharedC.Shards(); s++ {
		snap := sharedC.Engine(s).MetricsSnapshot()
		if n := snap.Counters["core_shared_scans"]; n != 1 {
			t.Fatalf("shard %d: core_shared_scans = %d, want 1", s, n)
		}
		sharedReads := snap.Counters["flash_page_reads"]
		perReads := perQuery.Engine(s).MetricsSnapshot().Counters["flash_page_reads"]
		if sharedReads >= perReads {
			t.Fatalf("shard %d: shared sweep read %d flash pages, per-query %d — no amortization",
				s, sharedReads, perReads)
		}
	}
}
