package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// Satellite regression for replica divergence on non-idempotent admin ops:
// an AppendDB that failed on one replica of a group used to leave that
// replica stale but still serving, so failover reads returned pre-append
// answers. The fix applies group ops atomically: a replica the op fails on
// is quarantined out of routing; only an op that failed on every replica
// (mutating nothing) reports an error.

// quarantineFixture builds a shards×replicas cluster and a 1-shard oracle.
func quarantineFixture(t *testing.T, shards, replicas, features int) (*Engines, *Engines, *workload.FeatureDB) {
	t.Helper()
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	build := func(s, r int) *Engines {
		e, err := NewReplicatedEngines(s, r, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.WriteDB(db.Vectors); err != nil {
			t.Fatal(err)
		}
		if err := e.LoadModel(app.SCN); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return build(shards, replicas), build(1, 1), db
}

// TestAppendQuarantinesDivergedReplica: an append that fails on one of two
// replicas (divergence injected via the migration interlock on that replica
// alone) succeeds, quarantines the stale replica, and every subsequent
// query — across many calls, so replica rotation would have hit the stale
// copy — stays bit-identical to an oracle that took the same append.
func TestAppendQuarantinesDivergedReplica(t *testing.T) {
	const features, k = 120, 5
	live, oracle, db := quarantineFixture(t, 2, 2, features)
	// Shard 1 owns the tail route; interlock its db on replica 1 ONLY, so
	// the cluster append succeeds on replica 0 and fails on replica 1 —
	// exactly the mixed outcome that used to leave a stale serving replica.
	tailDB := live.Routes()[len(live.Routes())-1].DB
	diverged := live.Replica(1, 1)
	if err := diverged.BeginMigration(tailDB); err != nil {
		t.Fatal(err)
	}
	extra := db.Vectors[:7]
	if err := live.AppendDB(extra); err != nil {
		t.Fatalf("mixed-outcome append failed outright: %v", err)
	}
	if err := oracle.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	if got := live.Replicas(1); got != 1 {
		t.Fatalf("shard 1 has %d replicas, want 1 (stale replica quarantined)", got)
	}
	if got := live.Replicas(0); got != 2 {
		t.Fatalf("shard 0 has %d replicas, want 2 (untouched)", got)
	}
	if n := live.MetricsSnapshot().Counters["cluster_replicas_quarantined"]; n != 1 {
		t.Fatalf("quarantine counter %d, want 1", n)
	}
	assertPartition(t, live, features+7)
	// Appended features live on shard 1: self-querying one must surface its
	// global index identically to the oracle. Repeat across calls so the
	// old rotation schedule would have routed to the quarantined replica.
	for call := 0; call < 6; call++ {
		for _, probe := range [][]float32{extra[2], db.Vectors[30], db.Vectors[100]} {
			la, err := live.Query(probe, k)
			if err != nil {
				t.Fatal(err)
			}
			oa, err := oracle.Query(probe, k)
			if err != nil {
				t.Fatal(err)
			}
			assertSameTopK(t, fmt.Sprintf("call %d", call), la, oa)
			if la.Degraded {
				t.Fatalf("call %d degraded with no faults injected", call)
			}
		}
	}
}

// TestAppendAllReplicasFailAtomically: an append that fails on EVERY
// replica reports the error and mutates nothing — replica counts, routing,
// and answers are unchanged.
func TestAppendAllReplicasFailAtomically(t *testing.T) {
	const features, k = 120, 5
	live, oracle, db := quarantineFixture(t, 2, 2, features)
	tailDB := live.Routes()[len(live.Routes())-1].DB
	for r := 0; r < 2; r++ {
		if err := live.Replica(1, r).BeginMigration(tailDB); err != nil {
			t.Fatal(err)
		}
	}
	genBefore := live.Gen()
	err := live.AppendDB(db.Vectors[:7])
	if !errors.Is(err, core.ErrMigrating) {
		t.Fatalf("all-replica failure: %v, want core.ErrMigrating", err)
	}
	if live.Replicas(1) != 2 {
		t.Fatalf("shard 1 has %d replicas, want 2 (nothing quarantined)", live.Replicas(1))
	}
	if live.Gen() != genBefore {
		t.Fatalf("failed append published generation %d (was %d)", live.Gen(), genBefore)
	}
	if n := live.MetricsSnapshot().Counters["cluster_replicas_quarantined"]; n != 0 {
		t.Fatalf("quarantine counter %d, want 0", n)
	}
	assertPartition(t, live, features)
	la, err := live.Query(db.Vectors[40], k)
	if err != nil {
		t.Fatal(err)
	}
	oa, err := oracle.Query(db.Vectors[40], k)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, "post-failure", la, oa)
}

// TestQuarantinedReplicaSurvivesFailover: after a quarantine shrinks shard
// 1 to one replica, fault-injected failover keeps serving bit-identical
// post-append answers — the stale replica can no longer absorb failovers,
// so no degraded-or-not answer ever reflects pre-append state.
func TestQuarantinedReplicaSurvivesFailover(t *testing.T) {
	const features, k = 120, 5
	live, oracle, db := quarantineFixture(t, 2, 2, features)
	tailDB := live.Routes()[len(live.Routes())-1].DB
	if err := live.Replica(1, 1).BeginMigration(tailDB); err != nil {
		t.Fatal(err)
	}
	extra := db.Vectors[:7]
	if err := live.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AppendDB(extra); err != nil {
		t.Fatal(err)
	}
	if err := live.SetTolerance(Tolerance{FaultRate: 0.3, FaultSeed: 42, Quorum: 1}); err != nil {
		t.Fatal(err)
	}
	oa, err := oracle.Query(extra[2], k)
	if err != nil {
		t.Fatal(err)
	}
	served, degraded := 0, 0
	for call := 0; call < 20; call++ {
		la, err := live.Query(extra[2], k)
		if err != nil {
			// Quorum 1 unmet this call: every shard drew a fault. Legal.
			continue
		}
		served++
		if la.Degraded {
			degraded++
			continue
		}
		assertSameTopK(t, fmt.Sprintf("call %d", call), la, oa)
	}
	if served == 0 {
		t.Fatal("no call served at 0.3 fault rate")
	}
	if degraded == 0 {
		t.Fatal("no degraded answers at 0.3 fault rate on a 1-replica shard: injection never engaged")
	}
}

// TestReorgShardReplicated: a shard-level reorg applies to every replica
// and answers stay bit-identical to the oracle across rotated calls.
func TestReorgShardReplicated(t *testing.T) {
	const features, k = 120, 5
	live, oracle, db := quarantineFixture(t, 2, 2, features)
	// Reverse shard 0's local order (features 0..59).
	n := int(live.Routes()[0].Count)
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	if err := live.ReorgShard(0, order); err != nil {
		t.Fatal(err)
	}
	// The oracle is unsharded, so its global indices are unchanged; a
	// reorged shard answers with LOCAL indices remapped through the same
	// route, so feature IDs in answers now reflect the new local order.
	// Compare scores only: the score set must be identical, order included,
	// because reordering within a shard cannot change any pairwise score.
	for call := 0; call < 4; call++ {
		la, err := live.Query(db.Vectors[10], k)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := oracle.Query(db.Vectors[10], k)
		if err != nil {
			t.Fatal(err)
		}
		if len(la.TopK) != len(oa.TopK) {
			t.Fatalf("call %d: %d entries, want %d", call, len(la.TopK), len(oa.TopK))
		}
		for j := range la.TopK {
			if la.TopK[j].Score != oa.TopK[j].Score {
				t.Fatalf("call %d entry %d: score %v, want %v", call, j, la.TopK[j].Score, oa.TopK[j].Score)
			}
		}
	}
}
