package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topk"
)

// Sentinel errors distinguishing why a shard is missing from an answer.
var (
	// ErrShardTimeout marks a shard that had not reported when the
	// Tolerance.ShardTimeout expired.
	ErrShardTimeout = errors.New("cluster: shard timed out")
	// ErrShardSkipped marks a straggler whose answer was not awaited
	// because the quorum had already been reached.
	ErrShardSkipped = errors.New("cluster: shard skipped after quorum")
	// ErrRebalanceActive rejects admin operations (WriteDB, LoadModel,
	// AppendDB, ReorgShard) while an online rebalance is mid-move; queries
	// are unaffected.
	ErrRebalanceActive = errors.New("cluster: rebalance in progress")
)

// Engines is the functional counterpart of ShardedScan: a Fig. 10b
// scale-out deployment of full DeepStore engines, one per simulated SSD,
// each holding replica groups over slices of one materialized feature
// database. A query fans out along the current routing-table generation
// (see routing.go) — every route contributes one range-limited sub-query —
// and the per-route top-K queues reduce into a global answer. Batches drive
// each engine's concurrent query path via core.DeepStore.Queries.
type Engines struct {
	// opts is the engine configuration every shard (including shards added
	// by an online rebalance) is created with.
	opts core.Options

	// admin serializes admin operations and guards the construction state
	// below. Queries never take it: they read the published state pointer.
	admin sync.Mutex
	// groups[s] lists shard s's read replicas (primary first). Every
	// replica holds the same slice of the database and the same model, so a
	// query can route to any of them; routing rotates across calls and
	// fails over when the routed replica draws an injected fault.
	groups [][]*core.DeepStore
	// models[s] is shard s's registered model (0 until LoadModel).
	models []core.ModelID
	// net is the last loaded network, reloaded onto shards an online
	// rebalance adds.
	net *nn.Network
	// routes is the admin-side routing table (models resolved at publish).
	routes []route
	total  int64
	// rebalancing interlocks admin ops while a Rebalancer is mid-move.
	rebalancing bool

	// state is the published generation queries snapshot (routing.go).
	state atomic.Pointer[clusterState]

	tol   Tolerance
	inj   *fault.Injector
	calls atomic.Uint64 // Queries invocations, for per-call fault streams

	// reg and tracer are the cluster's own observability sinks (each shard
	// engine additionally keeps its own). Shard fan-out spans are laid on a
	// synthetic cluster timeline (obsClock): the shard engines' simulated
	// clocks are independent, so batch b starts where batch b−1's slowest
	// shard finished.
	reg    *obs.Registry
	tracer *obs.Tracer

	// obsMu guards the synthetic timeline and the heat profile, which
	// concurrent query batches update.
	obsMu    sync.Mutex
	obsClock sim.Time
	// heat[g] counts how often global feature g appeared in a merged top-K
	// — the demand signal PlanRebalance folds into stripe rankings.
	heat []int64
}

// Metrics returns the cluster-level metrics registry (fan-out, degraded
// answers, quorum/timeout events; per-shard engine metrics live on each
// shard's own registry, see Engine(s).Metrics()).
func (e *Engines) Metrics() *obs.Registry { return e.reg }

// Tracer returns the cluster's span tracer (per-shard fan-out slices on the
// synthetic cluster timeline).
func (e *Engines) Tracer() *obs.Tracer { return e.tracer }

// MetricsSnapshot exports the cluster registry.
func (e *Engines) MetricsSnapshot() obs.Snapshot { return e.reg.Snapshot() }

// Tolerance configures the cluster's degraded-operation policy and its
// deterministic fault injection. The zero value waits for every shard and
// injects nothing — today's behavior, bit for bit.
type Tolerance struct {
	// ShardTimeout caps the wait for shard answers (0 = wait forever).
	// Shards that miss it are reported as ErrShardTimeout and the query
	// degrades to the shards that did answer. The shard engines advance
	// SIMULATED time while executing, so this bound is meaningful only for
	// real goroutine stalls — the wall-clock delays DelayRate injects — or
	// with a Timer injected below; it cannot observe simulated latencies.
	ShardTimeout time.Duration
	// Timer overrides the timeout clock (nil = time.NewTimer). Tests inject
	// a manual trigger so timeout classification is deterministic: answers
	// already delivered are always collected before a fired timer is
	// honored, so "who timed out" is a pure function of which shards had
	// answered when the injected timer fired.
	Timer func(d time.Duration) <-chan time.Time
	// Quorum answers as soon as this many shards have reported healthy
	// results (0 = all shards). Stragglers are reported as ErrShardSkipped.
	// A query that cannot reach quorum fails outright.
	Quorum int
	// FaultRate is each shard's injected whole-shard failure probability
	// per Queries call, drawn deterministically from FaultSeed.
	FaultRate float64
	// FaultSeed roots the injection stream: call c, shard s draws from
	// Fork("call<c>-shard<s>"), so the failure schedule is a pure function
	// of the seed and the call sequence.
	FaultSeed int64
	// DelayRate/Delay stall a shard's fan-out goroutine (wall clock) before
	// it executes, modeling a slow device; drawn from the same stream.
	DelayRate float64
	Delay     time.Duration
}

// SetTolerance installs the degraded-operation policy.
func (e *Engines) SetTolerance(t Tolerance) error {
	e.admin.Lock()
	defer e.admin.Unlock()
	if t.FaultRate < 0 || t.FaultRate > 1 || t.DelayRate < 0 || t.DelayRate > 1 {
		return fmt.Errorf("cluster: rate outside [0, 1] in %+v", t)
	}
	if t.Quorum < 0 || t.Quorum > len(e.groups) {
		return fmt.Errorf("cluster: quorum %d invalid for %d shards", t.Quorum, len(e.groups))
	}
	if t.ShardTimeout < 0 || t.Delay < 0 {
		return fmt.Errorf("cluster: negative duration in %+v", t)
	}
	e.tol = t
	if t.FaultRate > 0 || t.DelayRate > 0 {
		e.inj = fault.New(t.FaultSeed)
	} else {
		e.inj = nil
	}
	return nil
}

// Answer is one query's cluster-wide result.
type Answer struct {
	// TopK holds the merged results with FeatureID in global database
	// coordinates.
	TopK []topk.Entry
	// Makespan is the slowest contributing sub-query's simulated latency —
	// the map-reduce barrier before the final merge.
	Makespan sim.Duration
	// EnergyJ sums the contributing shards' modeled energy.
	EnergyJ float64
	// FeaturesScanned sums the contributing sub-queries' scanned features;
	// with the pruning tier active, FeaturesScanned + Prune.FeaturesSkipped
	// equals the routed feature total regardless of how the routing table
	// splits the space (conservation across the split boundary).
	FeaturesScanned int64
	// Prune sums the contributing shards' exact-pruning skip accounting
	// (all zeros when shards run with Options.Prune off).
	Prune core.PruneStats

	// Degraded reports that the answer covers only a subset of the shards
	// (failures, timeouts, or quorum-skipped stragglers).
	Degraded bool
	// FailedShards lists the non-contributing shard indices in shard order.
	FailedShards []int
	// ShardErrs joins the per-shard failures (errors.Join); nil when every
	// shard contributed.
	ShardErrs error
}

// NewEngines creates n single-replica DeepStore engines with identical
// options.
func NewEngines(n int, opts core.Options) (*Engines, error) {
	return NewReplicatedEngines(n, 1, opts)
}

// NewReplicatedEngines creates a shards×replicas cluster: every shard's
// slice of the database is held by `replicas` identical engines, and each
// query routes to one replica per shard (rotating across calls, failing
// over past replicas that draw injected faults). Replication multiplies
// simulated devices, not data: a degraded shard stays answerable as long as
// one of its replicas survives.
//
// Admin operations apply to every replica of a group or fail atomically:
// an op that fails on every replica leaves the serving state untouched, and
// a mixed outcome quarantines the replicas the op failed on (removing them
// from routing and failover rotation), so a half-updated replica can never
// serve a failover read.
func NewReplicatedEngines(shards, replicas int, opts core.Options) (*Engines, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: %d shards invalid", shards)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: %d replicas invalid", replicas)
	}
	e := &Engines{opts: opts, reg: obs.NewRegistry(), tracer: obs.NewTracer(0)}
	for s := 0; s < shards; s++ {
		group := make([]*core.DeepStore, replicas)
		for r := range group {
			ds, err := core.New(opts)
			if err != nil {
				return nil, err
			}
			group[r] = ds
		}
		e.groups = append(e.groups, group)
	}
	e.models = make([]core.ModelID, shards)
	e.publishLocked()
	return e, nil
}

// Shards returns the number of shards (a live rebalance can grow it).
func (e *Engines) Shards() int { return len(e.state.Load().groups) }

// Replicas returns shard s's replica count (quarantine can shrink it).
func (e *Engines) Replicas(s int) int { return len(e.state.Load().groups[s]) }

// Engine exposes shard s's primary engine (for inspection and stats).
func (e *Engines) Engine(s int) *core.DeepStore { return e.state.Load().groups[s][0] }

// Replica exposes shard s's replica r (replica 0 is the primary).
func (e *Engines) Replica(s, r int) *core.DeepStore { return e.state.Load().groups[s][r] }

// WriteDB splits the features contiguously across the shards (balanced to
// within one feature) and writes each slice to every replica of its shard.
// The new routing table is published only after every write succeeded, so
// concurrent queries see either the previous generation or the new one in
// full — never a mix.
func (e *Engines) WriteDB(features [][]float32) error {
	e.admin.Lock()
	defer e.admin.Unlock()
	if e.rebalancing {
		return ErrRebalanceActive
	}
	n := int64(len(e.groups))
	if int64(len(features)) < n {
		return fmt.Errorf("cluster: %d features cannot shard across %d engines", len(features), n)
	}
	newRoutes := make([]route, 0, n)
	var off int64
	for s := int64(0); s < n; s++ {
		share := int64(len(features)) / n
		if s < int64(len(features))%n {
			share++
		}
		// Every replica of the shard receives the identical slice; fresh
		// identical engines assign identical IDs, so one DBID per shard
		// covers the whole replica group (verified, not assumed).
		var id ftl.DBID
		for r, ds := range e.groups[s] {
			got, err := ds.WriteDB(features[off : off+share])
			if err != nil {
				return err
			}
			if r == 0 {
				id = got
			} else if got != id {
				return fmt.Errorf("cluster: shard %d replica %d assigned DB %d, primary %d",
					s, r, got, id)
			}
		}
		newRoutes = append(newRoutes, route{shard: int(s), db: id, global: off, count: share})
		off += share
	}
	e.routes = newRoutes
	e.total = off
	e.obsMu.Lock()
	e.heat = make([]int64, off)
	e.obsMu.Unlock()
	e.publishLocked()
	return nil
}

// LoadModel registers the SCN with every replica of every shard; the model
// goes live for queries in one generation once every replica has it.
func (e *Engines) LoadModel(net *nn.Network) error {
	e.admin.Lock()
	defer e.admin.Unlock()
	if e.rebalancing {
		return ErrRebalanceActive
	}
	models := make([]core.ModelID, len(e.groups))
	for s, group := range e.groups {
		for r, ds := range group {
			id, err := ds.LoadModelNetwork(net)
			if err != nil {
				return err
			}
			if r == 0 {
				models[s] = id
			} else if id != models[s] {
				return fmt.Errorf("cluster: shard %d replica %d assigned model %d, primary %d",
					s, r, id, models[s])
			}
		}
	}
	e.models = models
	e.net = net
	e.publishLocked()
	return nil
}

// HistorySummary aggregates the query-history stores across every replica
// of every shard (engines with Options.History off contribute zeros) — the
// cluster-wide view of how much history has accumulated, how many query
// groups it mines into, and how much re-warming prefetch has done.
func (e *Engines) HistorySummary() core.HistoryStats {
	st := e.state.Load()
	var out core.HistoryStats
	for _, group := range st.groups {
		for _, ds := range group {
			hs := ds.HistoryStats()
			out.Add(hs)
		}
	}
	return out
}

// Heat returns the per-global-feature demand profile: how often each
// feature appeared in a merged top-K since the last WriteDB. PlanRebalance
// folds it into per-stripe rankings via internal/reorg.
func (e *Engines) Heat() []int64 {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	return append([]int64(nil), e.heat...)
}

// Query runs one query across all shards and merges the answers.
func (e *Engines) Query(qfv []float32, k int) (Answer, error) {
	answers, err := e.Queries([][]float32{qfv}, k)
	if err != nil {
		return Answer{}, err
	}
	return answers[0], nil
}

// Queries runs a batch of queries across all shards: each shard receives
// the whole batch through its engine's Queries entry point (each engine
// scores through its pooled batched-GEMM scan, so the fan-out keeps every
// shard's BatchScorer pool busy), shards execute concurrently, and each
// query's per-route top-Ks are reduced with topk.Merge after remapping
// feature IDs into global coordinates.
//
// Degraded operation (SetTolerance): shard errors no longer destroy the
// query. Every failure is collected, and as long as one shard — or the
// configured quorum — answers, the batch returns the healthy shards' merge
// with Degraded set and the failures joined in ShardErrs. Only a cluster
// with no healthy answer (or a missed quorum) returns an error.
func (e *Engines) Queries(qfvs [][]float32, k int) ([]Answer, error) {
	return e.run(qfvs, k, false)
}

// QueriesShared is Queries with per-shard shared sweeps: each shard
// executes the whole batch through core.DeepStore.QueryMulti, so every
// shard pays ONE simulated flash/weight-streaming scan per routed range for
// the batch instead of one per query. Answers are identical to Queries
// (QueryMulti's equivalence guarantee holds range by range, and the merge
// is unchanged); what changes is each shard's device timeline, which
// advances once per batch. Degraded operation (SetTolerance) applies
// exactly as in Queries.
func (e *Engines) QueriesShared(qfvs [][]float32, k int) ([]Answer, error) {
	return e.run(qfvs, k, true)
}

// QueriesSharedAs is QueriesShared with the batch accounted to a tenant:
// the cluster registry gains per-tenant served/degraded/failed counters, so
// a multi-tenant serving tier fronting the cluster can attribute degraded
// service to the tenants that absorbed it.
func (e *Engines) QueriesSharedAs(tenant string, qfvs [][]float32, k int) ([]Answer, error) {
	answers, err := e.run(qfvs, k, true)
	if err != nil {
		e.reg.Counter("cluster_tenant_" + tenant + "_failed").Add(int64(len(qfvs)))
		return nil, err
	}
	e.reg.Counter("cluster_tenant_" + tenant + "_queries").Add(int64(len(qfvs)))
	for _, a := range answers {
		if a.Degraded {
			e.reg.Counter("cluster_tenant_" + tenant + "_degraded").Inc()
		}
	}
	return answers, nil
}

// QueryAs is Query accounted to a tenant (see QueriesSharedAs).
func (e *Engines) QueryAs(tenant string, qfv []float32, k int) (Answer, error) {
	answers, err := e.QueriesSharedAs(tenant, [][]float32{qfv}, k)
	if err != nil {
		return Answer{}, err
	}
	return answers[0], nil
}

// run is the shared fan-out/collect/merge engine behind Queries and
// QueriesShared; shared selects each shard's execution path. It snapshots
// exactly one routing-table generation for the whole call: the fan-out, the
// feature-ID remap, and the merge all use that snapshot, so a concurrent
// WriteDB/LoadModel/rebalance flip is either entirely before or entirely
// after this batch.
func (e *Engines) run(qfvs [][]float32, k int, shared bool) ([]Answer, error) {
	st := e.state.Load()
	if len(st.routes) == 0 {
		return nil, fmt.Errorf("cluster: engines need WriteDB and LoadModel before queries")
	}
	if len(qfvs) == 0 {
		return nil, fmt.Errorf("cluster: empty batch")
	}
	call := e.calls.Add(1) - 1
	nshards := len(st.groups)
	// Build every shard's spec list up front: the fan-out goroutines only
	// read their slice, keeping spec construction off the scoring path.
	// A shard executes one range-limited sub-query per (owned route ×
	// query); spec j*len(qfvs)+i is route j's copy of query i.
	shardRoutes := make([][]route, nshards)
	for _, rt := range st.routes {
		shardRoutes[rt.shard] = append(shardRoutes[rt.shard], rt)
	}
	shardSpecs := make([][]core.QuerySpec, nshards)
	participants := 0
	for s, rts := range shardRoutes {
		if len(rts) == 0 {
			continue // a freshly added shard owns nothing yet
		}
		participants++
		specs := make([]core.QuerySpec, 0, len(rts)*len(qfvs))
		for _, rt := range rts {
			for _, q := range qfvs {
				specs = append(specs, core.QuerySpec{
					QFV: q, K: k, Model: rt.model, DB: rt.db,
					DBStart: rt.local, DBEnd: rt.local + rt.count,
				})
			}
		}
		shardSpecs[s] = specs
	}
	type shardOut struct {
		s       int
		results []*core.QueryResult
		err     error
	}
	// Buffered so stragglers skipped by quorum or timeout can still finish
	// and send without leaking a goroutine.
	ch := make(chan shardOut, participants)
	// attempt is one routed replica try: which replica, and the fault/delay
	// it drew.
	type attempt struct {
		rep      int
		injected error
		delay    time.Duration
	}
	for s := 0; s < nshards; s++ {
		if shardSpecs[s] == nil {
			continue
		}
		// Fault draws happen on the caller, in shard order then attempt
		// order, so the routing and failure schedule is deterministic
		// regardless of goroutine interleaving. Routing rotates the first
		// replica with the call counter; each faulted attempt fails over to
		// the next replica in rotation order. Replica 0 keeps the legacy
		// "call<c>-shard<s>" stream so single-replica clusters are
		// bit-identical to the pre-replication schedule.
		nrep := len(st.groups[s])
		rot := 0
		if nrep > 1 {
			rot = int(call % uint64(nrep))
		}
		plan := make([]attempt, 0, nrep)
		for a := 0; a < nrep; a++ {
			at := attempt{rep: (rot + a) % nrep}
			if e.inj != nil {
				var inj *fault.Injector
				if at.rep == 0 {
					inj = e.inj.Forkf("call%d-shard%d", call, s)
				} else {
					inj = e.inj.Forkf("call%d-shard%d-rep%d", call, s, at.rep)
				}
				if inj.Hit(e.tol.FaultRate) {
					at.injected = fmt.Errorf("cluster: shard %d replica %d: %w", s, at.rep, fault.ErrInjected)
					e.reg.Counter("cluster_injected_faults").Inc()
				}
				if inj.Hit(e.tol.DelayRate) {
					at.delay = e.tol.Delay
					if at.delay <= 0 {
						at.delay = time.Millisecond
					}
					e.reg.Counter("cluster_injected_delays").Inc()
				}
			}
			plan = append(plan, at)
			if at.injected == nil {
				// Healthy replica reached: later replicas stay undrawn, so
				// the draw count (and thus the schedule) is itself a pure
				// function of the seed and call sequence.
				break
			}
		}
		go func(s int, plan []attempt) {
			var errs []error
			for i, at := range plan {
				if at.delay > 0 {
					time.Sleep(at.delay)
				}
				if at.injected != nil {
					errs = append(errs, at.injected)
					if i < len(plan)-1 {
						e.reg.Counter("cluster_failovers").Inc()
					}
					continue
				}
				eng := st.groups[s][at.rep]
				var ids []core.QueryID
				var err error
				if shared {
					ids, err = eng.QueryMulti(shardSpecs[s])
				} else {
					ids, err = eng.Queries(shardSpecs[s])
				}
				if err != nil {
					// A real engine error is systematic (the same spec fails
					// on every replica): no failover, fail the shard.
					ch <- shardOut{s: s, err: fmt.Errorf("cluster: shard %d: %w", s, err)}
					return
				}
				results := make([]*core.QueryResult, len(ids))
				for i, id := range ids {
					res, err := eng.GetResults(id)
					if err != nil {
						ch <- shardOut{s: s, err: fmt.Errorf("cluster: shard %d: %w", s, err)}
						return
					}
					results[i] = res
				}
				ch <- shardOut{s: s, results: results}
				return
			}
			ch <- shardOut{s: s, err: errors.Join(errs...)}
		}(s, plan)
	}

	// Collect until every shard reports, the quorum of healthy answers is
	// reached, or the shard timeout expires.
	outs := make([]*shardOut, nshards)
	quorum := participants
	if e.tol.Quorum > 0 && e.tol.Quorum < quorum {
		quorum = e.tol.Quorum
	}
	var timeout <-chan time.Time
	if e.tol.ShardTimeout > 0 {
		if e.tol.Timer != nil {
			timeout = e.tol.Timer(e.tol.ShardTimeout)
		} else {
			timer := time.NewTimer(e.tol.ShardTimeout)
			defer timer.Stop()
			timeout = timer.C
		}
	}
	reported, healthy := 0, 0
	timedOut := false
collect:
	for reported < participants && healthy < quorum {
		// Answers already delivered win over a concurrently (or pre-) fired
		// timeout: a shard that has answered is never classified as timed
		// out, which keeps timeout tests with injected timers deterministic.
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
			continue
		default:
		}
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
		case <-timeout:
			timedOut = true
			break collect
		}
	}
	// Scoop shards that finished concurrently with the quorum/timeout
	// decision; their answers are free.
drain:
	for reported < participants {
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
		default:
			break drain
		}
	}

	var failed []int
	var shardErrs []error
	for s := 0; s < nshards; s++ {
		if shardSpecs[s] == nil {
			continue
		}
		switch {
		case outs[s] == nil && timedOut:
			failed = append(failed, s)
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w after %v", s, ErrShardTimeout, e.tol.ShardTimeout))
			e.reg.Counter("cluster_shard_timeouts").Inc()
		case outs[s] == nil:
			failed = append(failed, s)
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", s, ErrShardSkipped))
			e.reg.Counter("cluster_shard_skipped").Inc()
		case outs[s].err != nil:
			failed = append(failed, s)
			shardErrs = append(shardErrs, outs[s].err)
			e.reg.Counter("cluster_shard_errors").Inc()
		}
	}
	joined := errors.Join(shardErrs...)
	if healthy == 0 {
		return nil, fmt.Errorf("cluster: no healthy shard answered: %w", joined)
	}
	if e.tol.Quorum > 0 && healthy < e.tol.Quorum {
		return nil, fmt.Errorf("cluster: quorum not met (%d healthy of %d required): %w",
			healthy, e.tol.Quorum, joined)
	}

	e.reg.Counter("cluster_batches").Inc()
	e.reg.Counter("cluster_queries").Add(int64(len(qfvs)))
	if shared {
		e.reg.Counter("cluster_shared_batches").Inc()
	}
	if timedOut {
		e.reg.Counter("cluster_timeouts").Inc()
	}
	if len(failed) > 0 {
		e.reg.Counter("cluster_degraded_answers").Add(int64(len(qfvs)))
	}

	answers := make([]Answer, len(qfvs))
	for i := range qfvs {
		var queues []*topk.Queue
		for s := 0; s < nshards; s++ {
			o := outs[s]
			if o == nil || o.err != nil {
				continue
			}
			for j, rt := range shardRoutes[s] {
				res := o.results[j*len(qfvs)+i]
				q := topk.New(k)
				for _, entry := range res.TopK {
					entry.FeatureID += rt.global - rt.local
					q.Offer(entry)
				}
				queues = append(queues, q)
				if res.Latency > answers[i].Makespan {
					answers[i].Makespan = res.Latency
				}
				answers[i].EnergyJ += res.Energy.Total()
				answers[i].FeaturesScanned += res.FeaturesScanned
				answers[i].Prune.Add(res.Prune)
				if obs.SumStages(res.Stages) != res.Latency {
					// The per-query invariant (stage durations sum exactly
					// to the latency) must survive range splits; a breach
					// here is a core bug, surfaced as a counter the
					// migration-race tests pin to zero.
					e.reg.Counter("cluster_stage_sum_mismatch").Inc()
				}
			}
		}
		answers[i].TopK = topk.Merge(k, queues...).Results()
		e.reg.Histogram("cluster_query_makespan_ms", obs.LatencyBucketsMs()).Observe(answers[i].Makespan.Seconds() * 1e3)
		if len(failed) > 0 {
			answers[i].Degraded = true
			answers[i].FailedShards = failed
			answers[i].ShardErrs = joined
		}
	}

	// Per-shard fan-out spans on the synthetic cluster timeline: each
	// healthy shard's simulated busy time for this batch starts at the
	// cluster clock, which then advances by the batch makespan (the slowest
	// shard's total). The merged top-Ks also feed the heat profile here.
	e.obsMu.Lock()
	batchStart := e.obsClock
	var batchMakespan sim.Duration
	for s := 0; s < nshards; s++ {
		o := outs[s]
		if o == nil || o.err != nil {
			continue
		}
		var total sim.Duration
		for _, r := range o.results {
			total += r.Latency
		}
		if total > batchMakespan {
			batchMakespan = total
		}
		e.tracer.Add(obs.Span{
			Name: obs.SpanShard, Cat: "cluster", TID: int64(s),
			Start: batchStart, Dur: total,
			Args: map[string]string{"queries": strconv.Itoa(len(o.results))},
		})
		e.reg.Histogram("cluster_shard_batch_ms", obs.LatencyBucketsMs()).Observe(total.Seconds() * 1e3)
	}
	e.obsClock += sim.Time(batchMakespan)
	for i := range answers {
		for _, entry := range answers[i].TopK {
			if entry.FeatureID >= 0 && entry.FeatureID < int64(len(e.heat)) {
				e.heat[entry.FeatureID]++
			}
		}
	}
	e.obsMu.Unlock()

	return answers, nil
}
