package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topk"
)

// Sentinel errors distinguishing why a shard is missing from an answer.
var (
	// ErrShardTimeout marks a shard that had not reported when the
	// Tolerance.ShardTimeout expired.
	ErrShardTimeout = errors.New("cluster: shard timed out")
	// ErrShardSkipped marks a straggler whose answer was not awaited
	// because the quorum had already been reached.
	ErrShardSkipped = errors.New("cluster: shard skipped after quorum")
)

// Engines is the functional counterpart of ShardedScan: a Fig. 10b
// scale-out deployment of full DeepStore engines, one per simulated SSD,
// each holding a contiguous shard of one materialized feature database.
// A query fans out to every shard's engine (which in turn shards its scan
// across channels — the two-level map of a multi-SSD map-reduce), and the
// per-shard top-K queues reduce into a global answer. Batches drive each
// engine's concurrent query path via core.DeepStore.Queries.
type Engines struct {
	// shards[s] is shard s's primary engine — always replicas[s][0].
	shards []*core.DeepStore
	// replicas[s] lists shard s's read replicas (primary first). Every
	// replica holds the same slice of the database and the same model, so a
	// query can route to any of them; routing rotates across calls and
	// fails over when the routed replica draws an injected fault.
	replicas [][]*core.DeepStore
	dbs      []ftl.DBID
	models   []core.ModelID
	// offsets[s] is the global index of shard s's first feature.
	offsets []int64

	tol   Tolerance
	inj   *fault.Injector
	calls uint64 // Queries invocations, for per-call fault streams

	// reg and tracer are the cluster's own observability sinks (each shard
	// engine additionally keeps its own). Shard fan-out spans are laid on a
	// synthetic cluster timeline (obsClock): the shard engines' simulated
	// clocks are independent, so batch b starts where batch b−1's slowest
	// shard finished.
	reg      *obs.Registry
	tracer   *obs.Tracer
	obsClock sim.Time
}

// Metrics returns the cluster-level metrics registry (fan-out, degraded
// answers, quorum/timeout events; per-shard engine metrics live on each
// shard's own registry, see Engine(s).Metrics()).
func (e *Engines) Metrics() *obs.Registry { return e.reg }

// Tracer returns the cluster's span tracer (per-shard fan-out slices on the
// synthetic cluster timeline).
func (e *Engines) Tracer() *obs.Tracer { return e.tracer }

// MetricsSnapshot exports the cluster registry.
func (e *Engines) MetricsSnapshot() obs.Snapshot { return e.reg.Snapshot() }

// Tolerance configures the cluster's degraded-operation policy and its
// deterministic fault injection. The zero value waits for every shard and
// injects nothing — today's behavior, bit for bit.
type Tolerance struct {
	// ShardTimeout caps the wait for shard answers (0 = wait forever).
	// Shards that miss it are reported as ErrShardTimeout and the query
	// degrades to the shards that did answer. The shard engines advance
	// SIMULATED time while executing, so this bound is meaningful only for
	// real goroutine stalls — the wall-clock delays DelayRate injects — or
	// with a Timer injected below; it cannot observe simulated latencies.
	ShardTimeout time.Duration
	// Timer overrides the timeout clock (nil = time.NewTimer). Tests inject
	// a manual trigger so timeout classification is deterministic: answers
	// already delivered are always collected before a fired timer is
	// honored, so "who timed out" is a pure function of which shards had
	// answered when the injected timer fired.
	Timer func(d time.Duration) <-chan time.Time
	// Quorum answers as soon as this many shards have reported healthy
	// results (0 = all shards). Stragglers are reported as ErrShardSkipped.
	// A query that cannot reach quorum fails outright.
	Quorum int
	// FaultRate is each shard's injected whole-shard failure probability
	// per Queries call, drawn deterministically from FaultSeed.
	FaultRate float64
	// FaultSeed roots the injection stream: call c, shard s draws from
	// Fork("call<c>-shard<s>"), so the failure schedule is a pure function
	// of the seed and the call sequence.
	FaultSeed int64
	// DelayRate/Delay stall a shard's fan-out goroutine (wall clock) before
	// it executes, modeling a slow device; drawn from the same stream.
	DelayRate float64
	Delay     time.Duration
}

// SetTolerance installs the degraded-operation policy.
func (e *Engines) SetTolerance(t Tolerance) error {
	if t.FaultRate < 0 || t.FaultRate > 1 || t.DelayRate < 0 || t.DelayRate > 1 {
		return fmt.Errorf("cluster: rate outside [0, 1] in %+v", t)
	}
	if t.Quorum < 0 || t.Quorum > len(e.shards) {
		return fmt.Errorf("cluster: quorum %d invalid for %d shards", t.Quorum, len(e.shards))
	}
	if t.ShardTimeout < 0 || t.Delay < 0 {
		return fmt.Errorf("cluster: negative duration in %+v", t)
	}
	e.tol = t
	if t.FaultRate > 0 || t.DelayRate > 0 {
		e.inj = fault.New(t.FaultSeed)
	} else {
		e.inj = nil
	}
	return nil
}

// Answer is one query's cluster-wide result.
type Answer struct {
	// TopK holds the merged results with FeatureID in global database
	// coordinates.
	TopK []topk.Entry
	// Makespan is the slowest contributing shard's simulated latency — the
	// map-reduce barrier before the final merge.
	Makespan sim.Duration
	// EnergyJ sums the contributing shards' modeled energy.
	EnergyJ float64
	// Prune sums the contributing shards' exact-pruning skip accounting
	// (all zeros when shards run with Options.Prune off).
	Prune core.PruneStats

	// Degraded reports that the answer covers only a subset of the shards
	// (failures, timeouts, or quorum-skipped stragglers).
	Degraded bool
	// FailedShards lists the non-contributing shard indices in shard order.
	FailedShards []int
	// ShardErrs joins the per-shard failures (errors.Join); nil when every
	// shard contributed.
	ShardErrs error
}

// NewEngines creates n single-replica DeepStore engines with identical
// options.
func NewEngines(n int, opts core.Options) (*Engines, error) {
	return NewReplicatedEngines(n, 1, opts)
}

// NewReplicatedEngines creates a shards×replicas cluster: every shard's
// slice of the database is held by `replicas` identical engines, and each
// query routes to one replica per shard (rotating across calls, failing
// over past replicas that draw injected faults). Replication multiplies
// simulated devices, not data: a degraded shard stays answerable as long as
// one of its replicas survives.
func NewReplicatedEngines(shards, replicas int, opts core.Options) (*Engines, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: %d shards invalid", shards)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: %d replicas invalid", replicas)
	}
	e := &Engines{reg: obs.NewRegistry(), tracer: obs.NewTracer(0)}
	for s := 0; s < shards; s++ {
		group := make([]*core.DeepStore, replicas)
		for r := range group {
			ds, err := core.New(opts)
			if err != nil {
				return nil, err
			}
			group[r] = ds
		}
		e.replicas = append(e.replicas, group)
		e.shards = append(e.shards, group[0])
	}
	return e, nil
}

// Shards returns the number of shards.
func (e *Engines) Shards() int { return len(e.shards) }

// Replicas returns shard s's replica count.
func (e *Engines) Replicas(s int) int { return len(e.replicas[s]) }

// Engine exposes shard s's primary engine (for inspection and stats).
func (e *Engines) Engine(s int) *core.DeepStore { return e.shards[s] }

// Replica exposes shard s's replica r (replica 0 is the primary).
func (e *Engines) Replica(s, r int) *core.DeepStore { return e.replicas[s][r] }

// WriteDB splits the features contiguously across the shards (balanced to
// within one feature) and writes each slice to its engine.
func (e *Engines) WriteDB(features [][]float32) error {
	n := int64(len(e.shards))
	if int64(len(features)) < n {
		return fmt.Errorf("cluster: %d features cannot shard across %d engines", len(features), n)
	}
	e.dbs = e.dbs[:0]
	e.offsets = e.offsets[:0]
	var off int64
	for s := int64(0); s < n; s++ {
		share := int64(len(features)) / n
		if s < int64(len(features))%n {
			share++
		}
		// Every replica of the shard receives the identical slice; fresh
		// identical engines assign identical IDs, so one DBID per shard
		// covers the whole replica group (verified, not assumed).
		for r, ds := range e.replicas[s] {
			id, err := ds.WriteDB(features[off : off+share])
			if err != nil {
				return err
			}
			if r == 0 {
				e.dbs = append(e.dbs, id)
			} else if id != e.dbs[s] {
				return fmt.Errorf("cluster: shard %d replica %d assigned DB %d, primary %d",
					s, r, id, e.dbs[s])
			}
		}
		e.offsets = append(e.offsets, off)
		off += share
	}
	return nil
}

// LoadModel registers the SCN with every replica of every shard.
func (e *Engines) LoadModel(net *nn.Network) error {
	e.models = e.models[:0]
	for s, group := range e.replicas {
		for r, ds := range group {
			id, err := ds.LoadModelNetwork(net)
			if err != nil {
				return err
			}
			if r == 0 {
				e.models = append(e.models, id)
			} else if id != e.models[s] {
				return fmt.Errorf("cluster: shard %d replica %d assigned model %d, primary %d",
					s, r, id, e.models[s])
			}
		}
	}
	return nil
}

// Query runs one query across all shards and merges the answers.
func (e *Engines) Query(qfv []float32, k int) (Answer, error) {
	answers, err := e.Queries([][]float32{qfv}, k)
	if err != nil {
		return Answer{}, err
	}
	return answers[0], nil
}

// Queries runs a batch of queries across all shards: each shard receives
// the whole batch through its engine's Queries entry point (each engine
// scores through its pooled batched-GEMM scan, so the fan-out keeps every
// shard's BatchScorer pool busy), shards execute concurrently, and each
// query's per-shard top-Ks are reduced with topk.Merge after remapping
// feature IDs into global coordinates.
//
// Degraded operation (SetTolerance): shard errors no longer destroy the
// query. Every failure is collected, and as long as one shard — or the
// configured quorum — answers, the batch returns the healthy shards' merge
// with Degraded set and the failures joined in ShardErrs. Only a cluster
// with no healthy answer (or a missed quorum) returns an error.
func (e *Engines) Queries(qfvs [][]float32, k int) ([]Answer, error) {
	return e.run(qfvs, k, false)
}

// QueriesShared is Queries with per-shard shared sweeps: each shard
// executes the whole batch through core.DeepStore.QueryMulti, so every
// shard pays ONE simulated flash/weight-streaming scan for the batch
// instead of one per query. Answers are identical to Queries (QueryMulti's
// equivalence guarantee holds shard by shard, and the merge is unchanged);
// what changes is each shard's device timeline, which advances once per
// batch. Degraded operation (SetTolerance) applies exactly as in Queries.
func (e *Engines) QueriesShared(qfvs [][]float32, k int) ([]Answer, error) {
	return e.run(qfvs, k, true)
}

// QueriesSharedAs is QueriesShared with the batch accounted to a tenant:
// the cluster registry gains per-tenant served/degraded/failed counters, so
// a multi-tenant serving tier fronting the cluster can attribute degraded
// service to the tenants that absorbed it.
func (e *Engines) QueriesSharedAs(tenant string, qfvs [][]float32, k int) ([]Answer, error) {
	answers, err := e.run(qfvs, k, true)
	if err != nil {
		e.reg.Counter("cluster_tenant_" + tenant + "_failed").Add(int64(len(qfvs)))
		return nil, err
	}
	e.reg.Counter("cluster_tenant_" + tenant + "_queries").Add(int64(len(qfvs)))
	for _, a := range answers {
		if a.Degraded {
			e.reg.Counter("cluster_tenant_" + tenant + "_degraded").Inc()
		}
	}
	return answers, nil
}

// QueryAs is Query accounted to a tenant (see QueriesSharedAs).
func (e *Engines) QueryAs(tenant string, qfv []float32, k int) (Answer, error) {
	answers, err := e.QueriesSharedAs(tenant, [][]float32{qfv}, k)
	if err != nil {
		return Answer{}, err
	}
	return answers[0], nil
}

// run is the shared fan-out/collect/merge engine behind Queries and
// QueriesShared; shared selects each shard's execution path.
func (e *Engines) run(qfvs [][]float32, k int, shared bool) ([]Answer, error) {
	if len(e.dbs) != len(e.shards) || len(e.models) != len(e.shards) {
		return nil, fmt.Errorf("cluster: engines need WriteDB and LoadModel before queries")
	}
	if len(qfvs) == 0 {
		return nil, fmt.Errorf("cluster: empty batch")
	}
	e.calls++
	call := e.calls - 1
	// Build every shard's spec list up front: the fan-out goroutines only
	// read their slice, keeping spec construction off the scoring path.
	shardSpecs := make([][]core.QuerySpec, len(e.shards))
	for s := range e.shards {
		specs := make([]core.QuerySpec, len(qfvs))
		for i, q := range qfvs {
			specs[i] = core.QuerySpec{QFV: q, K: k, Model: e.models[s], DB: e.dbs[s]}
		}
		shardSpecs[s] = specs
	}
	type shardOut struct {
		s       int
		results []*core.QueryResult
		err     error
	}
	// Buffered so stragglers skipped by quorum or timeout can still finish
	// and send without leaking a goroutine.
	ch := make(chan shardOut, len(e.shards))
	// attempt is one routed replica try: which replica, and the fault/delay
	// it drew.
	type attempt struct {
		rep      int
		injected error
		delay    time.Duration
	}
	for s := range e.shards {
		// Fault draws happen on the caller, in shard order then attempt
		// order, so the routing and failure schedule is deterministic
		// regardless of goroutine interleaving. Routing rotates the first
		// replica with the call counter; each faulted attempt fails over to
		// the next replica in rotation order. Replica 0 keeps the legacy
		// "call<c>-shard<s>" stream so single-replica clusters are
		// bit-identical to the pre-replication schedule.
		nrep := len(e.replicas[s])
		rot := 0
		if nrep > 1 {
			rot = int(call % uint64(nrep))
		}
		plan := make([]attempt, 0, nrep)
		for a := 0; a < nrep; a++ {
			at := attempt{rep: (rot + a) % nrep}
			if e.inj != nil {
				var inj *fault.Injector
				if at.rep == 0 {
					inj = e.inj.Forkf("call%d-shard%d", call, s)
				} else {
					inj = e.inj.Forkf("call%d-shard%d-rep%d", call, s, at.rep)
				}
				if inj.Hit(e.tol.FaultRate) {
					at.injected = fmt.Errorf("cluster: shard %d replica %d: %w", s, at.rep, fault.ErrInjected)
					e.reg.Counter("cluster_injected_faults").Inc()
				}
				if inj.Hit(e.tol.DelayRate) {
					at.delay = e.tol.Delay
					if at.delay <= 0 {
						at.delay = time.Millisecond
					}
					e.reg.Counter("cluster_injected_delays").Inc()
				}
			}
			plan = append(plan, at)
			if at.injected == nil {
				// Healthy replica reached: later replicas stay undrawn, so
				// the draw count (and thus the schedule) is itself a pure
				// function of the seed and call sequence.
				break
			}
		}
		go func(s int, plan []attempt) {
			var errs []error
			for i, at := range plan {
				if at.delay > 0 {
					time.Sleep(at.delay)
				}
				if at.injected != nil {
					errs = append(errs, at.injected)
					if i < len(plan)-1 {
						e.reg.Counter("cluster_failovers").Inc()
					}
					continue
				}
				eng := e.replicas[s][at.rep]
				var ids []core.QueryID
				var err error
				if shared {
					ids, err = eng.QueryMulti(shardSpecs[s])
				} else {
					ids, err = eng.Queries(shardSpecs[s])
				}
				if err != nil {
					// A real engine error is systematic (the same spec fails
					// on every replica): no failover, fail the shard.
					ch <- shardOut{s: s, err: fmt.Errorf("cluster: shard %d: %w", s, err)}
					return
				}
				results := make([]*core.QueryResult, len(ids))
				for i, id := range ids {
					res, err := eng.GetResults(id)
					if err != nil {
						ch <- shardOut{s: s, err: fmt.Errorf("cluster: shard %d: %w", s, err)}
						return
					}
					results[i] = res
				}
				ch <- shardOut{s: s, results: results}
				return
			}
			ch <- shardOut{s: s, err: errors.Join(errs...)}
		}(s, plan)
	}

	// Collect until every shard reports, the quorum of healthy answers is
	// reached, or the shard timeout expires.
	outs := make([]*shardOut, len(e.shards))
	quorum := len(e.shards)
	if e.tol.Quorum > 0 && e.tol.Quorum < quorum {
		quorum = e.tol.Quorum
	}
	var timeout <-chan time.Time
	if e.tol.ShardTimeout > 0 {
		if e.tol.Timer != nil {
			timeout = e.tol.Timer(e.tol.ShardTimeout)
		} else {
			timer := time.NewTimer(e.tol.ShardTimeout)
			defer timer.Stop()
			timeout = timer.C
		}
	}
	reported, healthy := 0, 0
	timedOut := false
collect:
	for reported < len(e.shards) && healthy < quorum {
		// Answers already delivered win over a concurrently (or pre-) fired
		// timeout: a shard that has answered is never classified as timed
		// out, which keeps timeout tests with injected timers deterministic.
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
			continue
		default:
		}
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
		case <-timeout:
			timedOut = true
			break collect
		}
	}
	// Scoop shards that finished concurrently with the quorum/timeout
	// decision; their answers are free.
drain:
	for reported < len(e.shards) {
		select {
		case o := <-ch:
			outs[o.s] = &o
			reported++
			if o.err == nil {
				healthy++
			}
		default:
			break drain
		}
	}

	var failed []int
	var shardErrs []error
	for s := range e.shards {
		switch {
		case outs[s] == nil && timedOut:
			failed = append(failed, s)
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w after %v", s, ErrShardTimeout, e.tol.ShardTimeout))
			e.reg.Counter("cluster_shard_timeouts").Inc()
		case outs[s] == nil:
			failed = append(failed, s)
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", s, ErrShardSkipped))
			e.reg.Counter("cluster_shard_skipped").Inc()
		case outs[s].err != nil:
			failed = append(failed, s)
			shardErrs = append(shardErrs, outs[s].err)
			e.reg.Counter("cluster_shard_errors").Inc()
		}
	}
	joined := errors.Join(shardErrs...)
	if healthy == 0 {
		return nil, fmt.Errorf("cluster: no healthy shard answered: %w", joined)
	}
	if e.tol.Quorum > 0 && healthy < e.tol.Quorum {
		return nil, fmt.Errorf("cluster: quorum not met (%d healthy of %d required): %w",
			healthy, e.tol.Quorum, joined)
	}

	// Per-shard fan-out spans: each healthy shard's simulated busy time for
	// this batch, starting at the synthetic cluster clock; the clock then
	// advances by the batch makespan (the slowest shard's total).
	e.reg.Counter("cluster_batches").Inc()
	e.reg.Counter("cluster_queries").Add(int64(len(qfvs)))
	if shared {
		e.reg.Counter("cluster_shared_batches").Inc()
	}
	if timedOut {
		e.reg.Counter("cluster_timeouts").Inc()
	}
	if len(failed) > 0 {
		e.reg.Counter("cluster_degraded_answers").Add(int64(len(qfvs)))
	}
	batchStart := e.obsClock
	var batchMakespan sim.Duration
	for s := range e.shards {
		o := outs[s]
		if o == nil || o.err != nil {
			continue
		}
		var total sim.Duration
		for _, r := range o.results {
			total += r.Latency
		}
		if total > batchMakespan {
			batchMakespan = total
		}
		e.tracer.Add(obs.Span{
			Name: obs.SpanShard, Cat: "cluster", TID: int64(s),
			Start: batchStart, Dur: total,
			Args: map[string]string{"queries": strconv.Itoa(len(o.results))},
		})
		e.reg.Histogram("cluster_shard_batch_ms", obs.LatencyBucketsMs()).Observe(total.Seconds() * 1e3)
	}
	e.obsClock += sim.Time(batchMakespan)

	answers := make([]Answer, len(qfvs))
	for i := range qfvs {
		var queues []*topk.Queue
		for s := range e.shards {
			o := outs[s]
			if o == nil || o.err != nil {
				continue
			}
			q := topk.New(k)
			for _, entry := range o.results[i].TopK {
				entry.FeatureID += e.offsets[s]
				q.Offer(entry)
			}
			queues = append(queues, q)
			if lat := o.results[i].Latency; lat > answers[i].Makespan {
				answers[i].Makespan = lat
			}
			answers[i].EnergyJ += o.results[i].Energy.Total()
			answers[i].Prune.Add(o.results[i].Prune)
		}
		answers[i].TopK = topk.Merge(k, queues...).Results()
		e.reg.Histogram("cluster_query_makespan_ms", obs.LatencyBucketsMs()).Observe(answers[i].Makespan.Seconds() * 1e3)
		if len(failed) > 0 {
			answers[i].Degraded = true
			answers[i].FailedShards = failed
			answers[i].ShardErrs = joined
		}
	}
	return answers, nil
}
