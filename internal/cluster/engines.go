package cluster

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/topk"
)

// Engines is the functional counterpart of ShardedScan: a Fig. 10b
// scale-out deployment of full DeepStore engines, one per simulated SSD,
// each holding a contiguous shard of one materialized feature database.
// A query fans out to every shard's engine (which in turn shards its scan
// across channels — the two-level map of a multi-SSD map-reduce), and the
// per-shard top-K queues reduce into a global answer. Batches drive each
// engine's concurrent query path via core.DeepStore.Queries.
type Engines struct {
	shards []*core.DeepStore
	dbs    []ftl.DBID
	models []core.ModelID
	// offsets[s] is the global index of shard s's first feature.
	offsets []int64
}

// Answer is one query's cluster-wide result.
type Answer struct {
	// TopK holds the merged results with FeatureID in global database
	// coordinates.
	TopK []topk.Entry
	// Makespan is the slowest shard's simulated latency — the map-reduce
	// barrier before the final merge.
	Makespan sim.Duration
	// EnergyJ sums the shards' modeled energy.
	EnergyJ float64
}

// NewEngines creates n DeepStore engines with identical options.
func NewEngines(n int, opts core.Options) (*Engines, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d engines invalid", n)
	}
	e := &Engines{}
	for i := 0; i < n; i++ {
		ds, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, ds)
	}
	return e, nil
}

// Shards returns the number of engines.
func (e *Engines) Shards() int { return len(e.shards) }

// Engine exposes shard s's engine (for inspection and stats).
func (e *Engines) Engine(s int) *core.DeepStore { return e.shards[s] }

// WriteDB splits the features contiguously across the shards (balanced to
// within one feature) and writes each slice to its engine.
func (e *Engines) WriteDB(features [][]float32) error {
	n := int64(len(e.shards))
	if int64(len(features)) < n {
		return fmt.Errorf("cluster: %d features cannot shard across %d engines", len(features), n)
	}
	e.dbs = e.dbs[:0]
	e.offsets = e.offsets[:0]
	var off int64
	for s := int64(0); s < n; s++ {
		share := int64(len(features)) / n
		if s < int64(len(features))%n {
			share++
		}
		id, err := e.shards[s].WriteDB(features[off : off+share])
		if err != nil {
			return err
		}
		e.dbs = append(e.dbs, id)
		e.offsets = append(e.offsets, off)
		off += share
	}
	return nil
}

// LoadModel registers the SCN with every shard's engine.
func (e *Engines) LoadModel(net *nn.Network) error {
	e.models = e.models[:0]
	for _, ds := range e.shards {
		id, err := ds.LoadModelNetwork(net)
		if err != nil {
			return err
		}
		e.models = append(e.models, id)
	}
	return nil
}

// Query runs one query across all shards and merges the answers.
func (e *Engines) Query(qfv []float32, k int) (Answer, error) {
	answers, err := e.Queries([][]float32{qfv}, k)
	if err != nil {
		return Answer{}, err
	}
	return answers[0], nil
}

// Queries runs a batch of queries across all shards: each shard receives
// the whole batch through its engine's Queries entry point (each engine
// scores through its pooled batched-GEMM scan, so the fan-out keeps every
// shard's BatchScorer pool busy), shards execute concurrently, and each
// query's per-shard top-Ks are reduced with topk.Merge after remapping
// feature IDs into global coordinates.
func (e *Engines) Queries(qfvs [][]float32, k int) ([]Answer, error) {
	if len(e.dbs) != len(e.shards) || len(e.models) != len(e.shards) {
		return nil, fmt.Errorf("cluster: engines need WriteDB and LoadModel before queries")
	}
	if len(qfvs) == 0 {
		return nil, fmt.Errorf("cluster: empty batch")
	}
	// Build every shard's spec list up front: the fan-out goroutines only
	// read their slice, keeping spec construction off the scoring path.
	shardSpecs := make([][]core.QuerySpec, len(e.shards))
	for s := range e.shards {
		specs := make([]core.QuerySpec, len(qfvs))
		for i, q := range qfvs {
			specs[i] = core.QuerySpec{QFV: q, K: k, Model: e.models[s], DB: e.dbs[s]}
		}
		shardSpecs[s] = specs
	}
	type shardOut struct {
		results []*core.QueryResult
		err     error
	}
	outs := make([]shardOut, len(e.shards))
	var wg sync.WaitGroup
	for s := range e.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ids, err := e.shards[s].Queries(shardSpecs[s])
			if err != nil {
				outs[s].err = err
				return
			}
			outs[s].results = make([]*core.QueryResult, len(ids))
			for i, id := range ids {
				res, err := e.shards[s].GetResults(id)
				if err != nil {
					outs[s].err = err
					return
				}
				outs[s].results[i] = res
			}
		}(s)
	}
	wg.Wait()
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}
	answers := make([]Answer, len(qfvs))
	for i := range qfvs {
		queues := make([]*topk.Queue, len(e.shards))
		for s, o := range outs {
			q := topk.New(k)
			for _, entry := range o.results[i].TopK {
				entry.FeatureID += e.offsets[s]
				q.Offer(entry)
			}
			queues[s] = q
			if lat := o.results[i].Latency; lat > answers[i].Makespan {
				answers[i].Makespan = lat
			}
			answers[i].EnergyJ += o.results[i].Energy.Total()
		}
		answers[i].TopK = topk.Merge(k, queues...).Results()
	}
	return answers, nil
}
