package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/reorg"
	"repro/internal/sim"
)

// Online shard split/rebalance. A Rebalancer migrates a contiguous global
// feature range from a hot shard to a destination shard (existing or newly
// added) without stopping reads: the copy runs chunk by chunk through the
// device model (migration reads charged on the source, programs on the
// destination, prune envelopes and int8 tables rebuilt by the destination's
// WriteDB), and after each chunk the routing table flips that sub-range to
// the destination in one published generation. A query that snapshotted
// gen g sees the pre-flip owner for the whole batch; a query that
// snapshots g+1 sees the post-flip owner — every feature index has exactly
// one authoritative owner at every generation, so merged answers stay
// bit-identical to an unsplit cluster throughout the move.

// AddShard as MoveSpec.Dest grows the cluster by one shard (same options
// and replica count as the source) and migrates into it.
const AddShard = -1

// MoveSpec describes one contiguous range migration.
type MoveSpec struct {
	// Source is the shard whose route currently owns the range.
	Source int
	// Dest is the destination shard index, or AddShard to grow the cluster.
	Dest int
	// Start is the first global feature index to move; Count the length.
	// [Start, Start+Count) must lie within a single current route.
	Start, Count int64
	// ChunkFeatures bounds the features copied per Step call (0 = the whole
	// range in one chunk). Smaller chunks flip routing more often, trading
	// copy efficiency for a finer-grained cutover.
	ChunkFeatures int64
}

// MoveReport summarizes a completed (or aborted) migration.
type MoveReport struct {
	// Gen is the routing-table generation after the last flip.
	Gen uint64
	// Moved counts features flipped to the destination; Chunks the Step
	// calls that moved them.
	Moved  int64
	Chunks int
	// Dest is the resolved destination shard (useful with AddShard).
	Dest int
	// SrcRead is simulated device time the source primary spent on
	// migration reads; DstWrite the destination primary's program time.
	SrcRead, DstWrite sim.Duration
}

// Rebalancer drives one MoveSpec chunk by chunk. Step is not safe for
// concurrent use with itself, but queries may run concurrently with every
// phase; admin ops (WriteDB, LoadModel, AppendDB, ReorgShard, another
// rebalance) are rejected with ErrRebalanceActive until Close.
type Rebalancer struct {
	e    *Engines
	spec MoveSpec
	// src snapshots the containing route at construction; the interlock
	// (ErrRebalanceActive + core ErrMigrating) guarantees it stays valid.
	src       route
	dest      int
	destAdded bool

	moved    int64
	chunks   int
	srcRead  sim.Duration
	dstWrite sim.Duration
	done     bool
	aborted  bool
}

// NewRebalancer validates the spec, resolves (or creates) the destination
// shard, and interlocks the source database against mutating admin ops.
// The routing table is not touched yet — queries are unaffected until the
// first Step flips a chunk.
func NewRebalancer(e *Engines, spec MoveSpec) (*Rebalancer, error) {
	e.admin.Lock()
	defer e.admin.Unlock()
	if e.rebalancing {
		return nil, ErrRebalanceActive
	}
	if len(e.routes) == 0 {
		return nil, fmt.Errorf("cluster: rebalance before WriteDB")
	}
	if spec.Count < 1 {
		return nil, fmt.Errorf("cluster: rebalance of %d features", spec.Count)
	}
	if spec.ChunkFeatures < 0 {
		return nil, fmt.Errorf("cluster: negative chunk size %d", spec.ChunkFeatures)
	}
	var src *route
	for i := range e.routes {
		rt := &e.routes[i]
		if rt.global <= spec.Start && spec.Start+spec.Count <= rt.global+rt.count {
			src = rt
			break
		}
	}
	if src == nil {
		return nil, fmt.Errorf("cluster: range [%d, %d) does not lie within one route",
			spec.Start, spec.Start+spec.Count)
	}
	if src.shard != spec.Source {
		return nil, fmt.Errorf("cluster: range [%d, %d) is owned by shard %d, not %d",
			spec.Start, spec.Start+spec.Count, src.shard, spec.Source)
	}
	dest := spec.Dest
	destAdded := false
	switch {
	case dest == AddShard:
		if e.net == nil {
			return nil, fmt.Errorf("cluster: cannot add a shard before LoadModel")
		}
		replicas := len(e.groups[src.shard])
		group := make([]*core.DeepStore, replicas)
		var model core.ModelID
		for r := range group {
			ds, err := core.New(e.opts)
			if err != nil {
				return nil, fmt.Errorf("cluster: adding shard: %w", err)
			}
			id, err := ds.LoadModelNetwork(e.net)
			if err != nil {
				return nil, fmt.Errorf("cluster: adding shard: %w", err)
			}
			if r == 0 {
				model = id
			} else if id != model {
				return nil, fmt.Errorf("cluster: added replica %d assigned model %d, primary %d", r, id, model)
			}
			group[r] = ds
		}
		e.groups = append(e.groups, group)
		e.models = append(e.models, model)
		dest = len(e.groups) - 1
		destAdded = true
	case dest >= 0 && dest < len(e.groups):
		if dest == spec.Source {
			return nil, fmt.Errorf("cluster: destination shard %d is the source", dest)
		}
		if e.models[dest] == 0 {
			return nil, fmt.Errorf("cluster: destination shard %d has no model", dest)
		}
	default:
		return nil, fmt.Errorf("cluster: destination shard %d out of range", dest)
	}
	// Interlock every source replica's database: a concurrent
	// AppendDB/ReorgDB/DeleteDB would invalidate the snapshot below.
	var begun []*core.DeepStore
	for _, ds := range e.groups[src.shard] {
		if err := ds.BeginMigration(src.db); err != nil {
			for _, b := range begun {
				b.EndMigration(src.db)
			}
			if destAdded {
				e.groups = e.groups[:len(e.groups)-1]
				e.models = e.models[:len(e.models)-1]
			}
			return nil, fmt.Errorf("cluster: interlocking source shard %d: %w", src.shard, err)
		}
		begun = append(begun, ds)
	}
	e.rebalancing = true
	if destAdded {
		// Publish the grown topology (the new shard owns nothing yet, so
		// queries skip it; they just see Shards() grow).
		e.publishLocked()
	}
	return &Rebalancer{e: e, spec: spec, src: *src, dest: dest, destAdded: destAdded}, nil
}

// Step migrates the next chunk: a device-time-charged range read on the
// source primary, a WriteDB on every destination replica (programs charged,
// bound/quant tables built by the destination engine), an ID verification,
// and one atomic routing flip. Returns done=true once the whole range has
// moved (the interlocks are then already released). On error nothing was
// flipped — queries still route to the source — and the caller should
// Abort.
func (rb *Rebalancer) Step() (done bool, err error) {
	if rb.done || rb.aborted {
		return rb.done, fmt.Errorf("cluster: rebalancer is finished")
	}
	e := rb.e
	chunk := rb.spec.Count - rb.moved
	if rb.spec.ChunkFeatures > 0 && chunk > rb.spec.ChunkFeatures {
		chunk = rb.spec.ChunkFeatures
	}
	globalStart := rb.spec.Start + rb.moved
	localStart := rb.src.local + (globalStart - rb.src.global)

	// Read the chunk off the source primary, charged as migration traffic
	// on its simulated device (the other replicas keep their full slice and
	// pay nothing; routing sub-ranges exclude the moved features on every
	// replica identically).
	srcPrimary := e.state.Load().groups[rb.src.shard][0]
	t0 := srcPrimary.Now()
	vecs, err := srcPrimary.ReadRangeForMigration(rb.src.db, localStart, chunk)
	if err != nil {
		return false, fmt.Errorf("cluster: migration read: %w", err)
	}
	rb.srcRead += sim.Duration(srcPrimary.Now() - t0)

	// Write the chunk as a fresh database on every destination replica.
	// WriteDB charges the programs and rebuilds the prune envelope and int8
	// tables for the chunk, so the destination serves it with the same
	// machinery as any other database.
	destGroup := e.state.Load().groups[rb.dest]
	var destID ftl.DBID
	var dstT0 sim.Time
	for r, ds := range destGroup {
		if r == 0 {
			dstT0 = ds.Now()
		}
		id, werr := ds.WriteDB(vecs)
		if werr != nil {
			// Nothing flipped: scrub the orphan chunk databases (best
			// effort) and leave routing untouched.
			for rr := 0; rr < r; rr++ {
				destGroup[rr].DeleteDB(destID)
			}
			return false, fmt.Errorf("cluster: migration write to shard %d replica %d: %w", rb.dest, r, werr)
		}
		if r == 0 {
			destID = id
			rb.dstWrite += sim.Duration(ds.Now() - dstT0)
		} else if id != destID {
			for rr := 0; rr <= r; rr++ {
				destGroup[rr].DeleteDB(destID)
			}
			return false, fmt.Errorf("cluster: migration write: shard %d replica %d assigned DB %d, primary %d",
				rb.dest, r, id, destID)
		}
	}

	// Flip the sub-range to the destination in one published generation.
	e.admin.Lock()
	next, err := splitForMove(e.routes, globalStart, chunk, route{shard: rb.dest, db: destID, local: 0})
	if err != nil {
		e.admin.Unlock()
		return false, err
	}
	e.routes = next
	e.publishLocked()
	gen := e.state.Load().gen
	e.admin.Unlock()

	rb.moved += chunk
	rb.chunks++
	e.reg.Counter("cluster_migrate_chunks").Inc()
	e.reg.Counter("cluster_migrate_features").Add(chunk)
	e.obsMu.Lock()
	e.tracer.Add(obs.Span{
		Name: obs.SpanMigrate, Cat: "cluster", TID: int64(rb.dest),
		Start: e.obsClock, Dur: rb.srcRead + rb.dstWrite,
		Args: map[string]string{
			"features": fmt.Sprintf("%d", chunk),
			"gen":      fmt.Sprintf("%d", gen),
		},
	})
	e.obsMu.Unlock()

	if rb.moved == rb.spec.Count {
		rb.finish()
		return true, nil
	}
	return false, nil
}

// finish releases the interlocks after the last flip.
func (rb *Rebalancer) finish() {
	e := rb.e
	e.admin.Lock()
	defer e.admin.Unlock()
	for _, ds := range e.groups[rb.src.shard] {
		ds.EndMigration(rb.src.db)
	}
	e.rebalancing = false
	rb.done = true
}

// Abort stops the migration, releasing the interlocks. Chunks already
// flipped stay with the destination (they are served correctly there;
// flipping back would re-copy for nothing); the unmoved remainder stays
// with the source. A destination shard added by AddShard that received
// nothing is removed again.
func (rb *Rebalancer) Abort() {
	if rb.done || rb.aborted {
		return
	}
	e := rb.e
	e.admin.Lock()
	defer e.admin.Unlock()
	for _, ds := range e.groups[rb.src.shard] {
		ds.EndMigration(rb.src.db)
	}
	if rb.destAdded && rb.moved == 0 && rb.dest == len(e.groups)-1 {
		e.groups = e.groups[:len(e.groups)-1]
		e.models = e.models[:len(e.models)-1]
	}
	e.rebalancing = false
	rb.aborted = true
	e.publishLocked()
}

// Report summarizes the migration so far.
func (rb *Rebalancer) Report() MoveReport {
	return MoveReport{
		Gen:      rb.e.Gen(),
		Moved:    rb.moved,
		Chunks:   rb.chunks,
		Dest:     rb.dest,
		SrcRead:  rb.srcRead,
		DstWrite: rb.dstWrite,
	}
}

// Rebalance runs a whole MoveSpec synchronously: construct, Step to
// completion, report. Queries may run concurrently on other goroutines.
func (e *Engines) Rebalance(spec MoveSpec) (MoveReport, error) {
	rb, err := NewRebalancer(e, spec)
	if err != nil {
		return MoveReport{}, err
	}
	for {
		done, err := rb.Step()
		if err != nil {
			rb.Abort()
			return rb.Report(), err
		}
		if done {
			return rb.Report(), nil
		}
	}
}

// PlanRebalance folds the cluster's per-feature heat profile (Heat) into
// per-stripe rankings via internal/reorg and proposes moving the hottest
// windowStripes-stripe window of the hottest route to a new shard. Returns
// an error when no demand has accumulated (nothing to plan from).
func (e *Engines) PlanRebalance(stripeFeatures int64, windowStripes int) (MoveSpec, error) {
	if stripeFeatures < 1 || windowStripes < 1 {
		return MoveSpec{}, fmt.Errorf("cluster: plan with stripe %d × window %d", stripeFeatures, windowStripes)
	}
	heat := e.Heat()
	st := e.state.Load()
	if len(st.routes) == 0 {
		return MoveSpec{}, fmt.Errorf("cluster: plan before WriteDB")
	}
	best := MoveSpec{}
	bestSum := -1.0
	for _, rt := range st.routes {
		if rt.global+rt.count > int64(len(heat)) {
			return MoveSpec{}, fmt.Errorf("cluster: heat profile covers %d features, routes %d", len(heat), rt.global+rt.count)
		}
		stripes, err := reorg.StripeHeat(heat[rt.global:rt.global+rt.count], int(stripeFeatures))
		if err != nil {
			if errors.Is(err, reorg.ErrNoVectors) {
				continue
			}
			return MoveSpec{}, err
		}
		w := windowStripes
		if w > len(stripes) {
			w = len(stripes)
		}
		start, err := reorg.HottestWindow(stripes, w)
		if err != nil {
			return MoveSpec{}, err
		}
		sum := 0.0
		for _, h := range stripes[start : start+w] {
			sum += h
		}
		if sum > bestSum {
			gStart := rt.global + int64(start)*stripeFeatures
			count := int64(w) * stripeFeatures
			if gStart+count > rt.global+rt.count {
				count = rt.global + rt.count - gStart
			}
			best = MoveSpec{Source: rt.shard, Dest: AddShard, Start: gStart, Count: count, ChunkFeatures: stripeFeatures}
			bestSum = sum
		}
	}
	if bestSum <= 0 {
		return MoveSpec{}, fmt.Errorf("cluster: no accumulated demand to plan from")
	}
	return best, nil
}
