package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Cluster-wide admin operations over replica groups. The correctness
// obligation is atomic-per-group application: a non-idempotent op
// (AppendDB, ReorgShard, a rebalance write) either lands on every replica
// that will keep serving, or the group's serving state is left untouched.
// The failure mode this closes is the half-updated replica: before, an op
// that failed on replica 1 of 2 left the group divergent, and failover
// reads returned answers from whichever replica routing happened to pick.
//
// Policy on a mixed outcome: replicas the op failed on are QUARANTINED —
// removed from the group, never routed to again — and the op reports
// success, because every replica still serving has applied it. Only an op
// that failed on ALL replicas returns an error, and in that case no replica
// mutated (core's admin ops validate before they mutate), so the group is
// still coherent at the old state.

// applyGroupLocked applies op to every replica of shard s with the
// quarantine discipline above. Callers hold e.admin and must publish a new
// generation afterwards if the op (or a quarantine) changed serving state.
// Returns the surviving replicas' error (nil on success) and whether any
// replica was quarantined.
func (e *Engines) applyGroupLocked(s int, opName string, op func(*core.DeepStore) error) (err error, quarantined bool) {
	group := e.groups[s]
	var kept []*core.DeepStore
	var errs []error
	for r, ds := range group {
		if opErr := op(ds); opErr != nil {
			errs = append(errs, fmt.Errorf("shard %d replica %d: %s: %w", s, r, opName, opErr))
		} else {
			kept = append(kept, ds)
		}
	}
	if len(kept) == 0 {
		// Total failure: nothing mutated (core admin ops fail before they
		// mutate), so the group keeps serving its old state.
		return fmt.Errorf("cluster: %s failed on every replica of shard %d: %w",
			opName, s, errors.Join(errs...)), false
	}
	if len(errs) > 0 {
		// Mixed outcome: the failed replicas are now stale — quarantine them
		// so no failover read can ever observe the divergence.
		e.groups[s] = kept
		e.reg.Counter("cluster_replicas_quarantined").Add(int64(len(group) - len(kept)))
		return nil, true
	}
	return nil, false
}

// AppendDB appends features to the tail of the global feature space: they
// land on the shard owning the last route, every replica of that group
// applies the append (or is quarantined, see above), and the routing table
// extends the tail route by len(features) in one published generation —
// concurrent queries see the database grow atomically.
func (e *Engines) AppendDB(features [][]float32) error {
	e.admin.Lock()
	defer e.admin.Unlock()
	if e.rebalancing {
		return ErrRebalanceActive
	}
	if len(e.routes) == 0 {
		return fmt.Errorf("cluster: appendDB before WriteDB")
	}
	if len(features) == 0 {
		return fmt.Errorf("cluster: appendDB with no features")
	}
	tail := e.routes[len(e.routes)-1]
	// The tail route must still end at its database's physical tail:
	// core.AppendDB places new features at the database's end, and the
	// route extension below assumes those indices are exactly
	// [tail.local+tail.count, ...). A rebalance that moved the tail range
	// elsewhere re-points the tail route at a fresh destination database
	// whose end is the route's end, so this holds across moves; verify
	// rather than assume.
	n, err := e.groups[tail.shard][0].DBFeatures(tail.db)
	if err != nil {
		return err
	}
	if tail.local+tail.count != n {
		return fmt.Errorf("cluster: tail route ends at local %d of database with %d features; appendDB needs the route to own the database tail",
			tail.local+tail.count, n)
	}
	// A total failure returns here with nothing mutated; a mixed outcome
	// returns nil with the failed replicas quarantined (the publish below
	// removes them from routing along with extending the route).
	if err, _ := e.applyGroupLocked(tail.shard, "appendDB", func(ds *core.DeepStore) error {
		return ds.AppendDB(tail.db, features)
	}); err != nil {
		return err
	}
	grown := int64(len(features))
	e.routes[len(e.routes)-1].count += grown
	e.total += grown
	e.obsMu.Lock()
	e.heat = append(e.heat, make([]int64, grown)...)
	e.obsMu.Unlock()
	e.publishLocked()
	return nil
}

// ReorgShard rewrites shard s's slice in a new feature order (an
// internal/reorg clustering's Order over the shard's local indices), with
// the same all-or-quarantine discipline as AppendDB. It requires the shard
// to be routed as one whole database — after a rebalance split the shard's
// range, local reorder would silently permute features that other routes
// still address, so the op refuses.
func (e *Engines) ReorgShard(s int, order []int) error {
	e.admin.Lock()
	defer e.admin.Unlock()
	if e.rebalancing {
		return ErrRebalanceActive
	}
	if s < 0 || s >= len(e.groups) {
		return fmt.Errorf("cluster: shard %d out of range", s)
	}
	var owned []route
	for _, rt := range e.routes {
		if rt.shard == s {
			owned = append(owned, rt)
		}
	}
	if len(owned) != 1 {
		return fmt.Errorf("cluster: shard %d is routed as %d ranges; reorg needs exactly one", s, len(owned))
	}
	rt := owned[0]
	n, err := e.groups[s][0].DBFeatures(rt.db)
	if err != nil {
		return err
	}
	if rt.local != 0 || rt.count != n {
		return fmt.Errorf("cluster: shard %d's route covers [%d, %d) of a %d-feature database; reorg needs the whole database",
			s, rt.local, rt.local+rt.count, n)
	}
	// Success (including a mixed outcome that quarantined stale replicas)
	// publishes; a total failure left every replica at the old order.
	if err, _ := e.applyGroupLocked(s, "reorgDB", func(ds *core.DeepStore) error {
		return ds.ReorgDB(rt.db, order)
	}); err != nil {
		return err
	}
	e.publishLocked()
	return nil
}
