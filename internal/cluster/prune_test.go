package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/nn"
	"repro/internal/ssd"
	"repro/internal/tensor"
)

// pruneClusterOpts mirrors the core pruning suite's small device: 4 channels
// so 3-entry shard queues fill quickly, giving the bound tier real skips in
// test-sized shards.
func pruneClusterOpts(prune bool) core.Options {
	opts := core.DefaultOptions()
	cfg := ssd.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels:        4,
		ChipsPerChannel: 1,
		PlanesPerChip:   1,
		BlocksPerPlane:  64,
		PagesPerBlock:   32,
		PageBytes:       4 << 10,
	}
	opts.Device = cfg
	opts.Prune = prune
	opts.PruneStripeFeatures = 2
	return opts
}

// pruneClusterVectors builds a block-clustered database (one block per stripe
// row on the 4-channel device) so stripe envelopes are tight.
func pruneClusterVectors(features int, seed int64) [][]float32 {
	const dims, blockLen = 8, 8
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, features)
	centroid := make([]float32, dims)
	for i := range out {
		if i%blockLen == 0 {
			for d := range centroid {
				centroid[d] = rng.Float32()*2 - 1
			}
		}
		v := make([]float32, dims)
		for d := range v {
			v[d] = centroid[d] + (rng.Float32()*2-1)*0.01
		}
		out[i] = v
	}
	return out
}

// TestEnginesPruneAggregates: a pruned cluster answers bit-identically to a
// dense cluster of the same deployment, the Answer carries the summed shard
// skip accounting, and the shared-sweep path agrees with the per-query path
// under pruning.
func TestEnginesPruneAggregates(t *testing.T) {
	const features, k = 262, 3
	net := nn.MustNetwork("cluster-prune-scn", tensor.Shape{8}, nn.CombineHadamard,
		nn.NewFC("fc1", 8, 4, nn.ActReLU),
		nn.NewFC("fc2", 4, 1, nn.ActNone))
	net.InitRandom(3)
	vectors := pruneClusterVectors(features, 31)

	build := func(prune bool) *Engines {
		e, err := NewEngines(2, pruneClusterOpts(prune))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.WriteDB(vectors); err != nil {
			t.Fatal(err)
		}
		if err := e.LoadModel(net); err != nil {
			t.Fatal(err)
		}
		return e
	}
	pruned := build(true)
	dense := build(false)

	qfvs := [][]float32{vectors[0], vectors[130], vectors[261]}
	pAns, err := pruned.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	dAns, err := dense.Queries(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	sharedPruned := build(true)
	sAns, err := sharedPruned.QueriesShared(qfvs, k)
	if err != nil {
		t.Fatal(err)
	}
	var skipped int64
	for i := range qfvs {
		if len(pAns[i].TopK) != len(dAns[i].TopK) {
			t.Fatalf("query %d: pruned %d entries, dense %d", i, len(pAns[i].TopK), len(dAns[i].TopK))
		}
		for j := range dAns[i].TopK {
			if pAns[i].TopK[j] != dAns[i].TopK[j] {
				t.Fatalf("query %d entry %d: pruned %+v != dense %+v", i, j, pAns[i].TopK[j], dAns[i].TopK[j])
			}
			if sAns[i].TopK[j] != dAns[i].TopK[j] {
				t.Fatalf("query %d entry %d: shared pruned %+v != dense %+v", i, j, sAns[i].TopK[j], dAns[i].TopK[j])
			}
		}
		if dAns[i].Prune != (core.PruneStats{}) {
			t.Fatalf("query %d: dense cluster reported prune stats %+v", i, dAns[i].Prune)
		}
		if pAns[i].Prune.StripesChecked == 0 {
			t.Fatalf("query %d: pruned cluster checked no stripes", i)
		}
		if sAns[i].Prune != pAns[i].Prune {
			t.Fatalf("query %d: shared sweep pruned %+v, per-query %+v", i, sAns[i].Prune, pAns[i].Prune)
		}
		skipped += pAns[i].Prune.FeaturesSkipped
	}
	if skipped == 0 {
		t.Fatal("pruned cluster never skipped a feature")
	}
}
