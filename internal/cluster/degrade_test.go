package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// expectedEngineFaults mirrors the injection schedule of Engines.Queries:
// call c, shard s draws Fork("call<c>-shard<s>") and tests FaultRate then
// DelayRate, so tests can predict the failure pattern from the seed alone.
func expectedEngineFaults(tol Tolerance, call uint64, shards int) (failed []int, delayed []int) {
	root := fault.New(tol.FaultSeed)
	for s := 0; s < shards; s++ {
		inj := root.Forkf("call%d-shard%d", call, s)
		if inj.Hit(tol.FaultRate) {
			failed = append(failed, s)
		}
		if inj.Hit(tol.DelayRate) {
			delayed = append(delayed, s)
		}
	}
	return failed, delayed
}

// shardSlices reproduces Engines.WriteDB's contiguous balanced split.
func shardSlices(features [][]float32, n int) (slices [][][]float32, offsets []int64) {
	var off int64
	for s := int64(0); s < int64(n); s++ {
		share := int64(len(features)) / int64(n)
		if s < int64(len(features))%int64(n) {
			share++
		}
		slices = append(slices, features[off:off+share])
		offsets = append(offsets, off)
		off += share
	}
	return slices, offsets
}

// TestEnginesDegradedDeterministic is the headline acceptance test: a
// 4-shard cluster at 10% per-shard fault rate under a fixed seed returns
// deterministic partial results flagged Degraded with the failed shards
// listed, and each degraded answer equals a single engine run over the
// healthy shards' slices (IDs remapped to global coordinates).
func TestEnginesDegradedDeterministic(t *testing.T) {
	const shards, features, k, calls = 4, 600, 7, 20
	tol := Tolerance{FaultRate: 0.10, FaultSeed: 7}

	run := func() ([][]int, [][]int64, [][]float32) {
		t.Helper()
		e, db := enginesFixture(t, shards, features)
		if err := e.SetTolerance(tol); err != nil {
			t.Fatal(err)
		}
		var failedPer [][]int
		var idsPer [][]int64
		var scoresPer [][]float32
		for c := 0; c < calls; c++ {
			ans, err := e.Query(db.Vectors[33], k)
			if err != nil {
				t.Fatalf("call %d: %v", c, err)
			}
			failedPer = append(failedPer, ans.FailedShards)
			var ids []int64
			var scores []float32
			for _, entry := range ans.TopK {
				ids = append(ids, entry.FeatureID)
				scores = append(scores, entry.Score)
			}
			idsPer = append(idsPer, ids)
			scoresPer = append(scoresPer, scores)
			if ans.Degraded != (len(ans.FailedShards) > 0) {
				t.Fatalf("call %d: Degraded=%v with failed shards %v", c, ans.Degraded, ans.FailedShards)
			}
			if ans.Degraded {
				if !errors.Is(ans.ShardErrs, fault.ErrInjected) {
					t.Fatalf("call %d: ShardErrs %v does not wrap fault.ErrInjected", c, ans.ShardErrs)
				}
				if ans.Makespan <= 0 {
					t.Fatalf("call %d: degraded answer has non-positive makespan", c)
				}
			} else if ans.ShardErrs != nil {
				t.Fatalf("call %d: healthy answer carries ShardErrs %v", c, ans.ShardErrs)
			}
		}
		return failedPer, idsPer, scoresPer
	}

	failedA, idsA, scoresA := run()
	failedB, idsB, scoresB := run()

	degraded, clean := 0, 0
	for c := 0; c < calls; c++ {
		// The failure schedule must match the documented injection contract.
		want, _ := expectedEngineFaults(tol, uint64(c), shards)
		if len(want) != len(failedA[c]) {
			t.Fatalf("call %d: failed shards %v, schedule predicts %v", c, failedA[c], want)
		}
		for i := range want {
			if failedA[c][i] != want[i] {
				t.Fatalf("call %d: failed shards %v, schedule predicts %v", c, failedA[c], want)
			}
		}
		// Bit-identical across runs of the same seed.
		if len(failedA[c]) != len(failedB[c]) || len(idsA[c]) != len(idsB[c]) {
			t.Fatalf("call %d: runs diverged (%v vs %v)", c, failedA[c], failedB[c])
		}
		for i := range idsA[c] {
			if idsA[c][i] != idsB[c][i] || scoresA[c][i] != scoresB[c][i] {
				t.Fatalf("call %d entry %d: runs diverged", c, i)
			}
		}
		if len(failedA[c]) > 0 {
			degraded++
		} else {
			clean++
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded call in the schedule; pick another seed")
	}
	if clean == 0 {
		t.Fatal("no clean call in the schedule; pick another seed")
	}

	// Healthy-subset oracle: for each degraded call, a single engine over
	// the surviving shards' contiguous slices must give the same answer
	// after remapping its IDs through the shard offsets.
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 11)
	slices, offsets := shardSlices(db.Vectors, shards)
	for c := 0; c < calls; c++ {
		if len(failedA[c]) == 0 {
			continue
		}
		failedSet := make(map[int]bool)
		for _, s := range failedA[c] {
			failedSet[s] = true
		}
		var healthyVecs [][]float32
		var globalIdx []int64
		for s := 0; s < shards; s++ {
			if failedSet[s] {
				continue
			}
			for i := range slices[s] {
				healthyVecs = append(healthyVecs, slices[s][i])
				globalIdx = append(globalIdx, offsets[s]+int64(i))
			}
		}
		single, err := core.New(core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		dbID, err := single.WriteDB(healthyVecs)
		if err != nil {
			t.Fatal(err)
		}
		model, err := single.LoadModelNetwork(app.SCN)
		if err != nil {
			t.Fatal(err)
		}
		qid, err := single.Query(core.QuerySpec{QFV: db.Vectors[33], K: k, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := single.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.TopK) != len(idsA[c]) {
			t.Fatalf("call %d: degraded answer has %d entries, oracle %d", c, len(idsA[c]), len(ref.TopK))
		}
		for i, entry := range ref.TopK {
			if want := globalIdx[entry.FeatureID]; idsA[c][i] != want || scoresA[c][i] != entry.Score {
				t.Fatalf("call %d entry %d: degraded (%d, %v) != oracle (%d, %v)",
					c, i, idsA[c][i], scoresA[c][i], want, entry.Score)
			}
		}
	}
}

// TestEnginesZeroRateBitIdentical: installing a zero-rate tolerance leaves
// the cluster's answers bit-identical to an untouched cluster.
func TestEnginesZeroRateBitIdentical(t *testing.T) {
	const shards, features, k = 3, 300, 5
	plain, db := enginesFixture(t, shards, features)
	tuned, _ := enginesFixture(t, shards, features)
	if err := tuned.SetTolerance(Tolerance{FaultRate: 0, DelayRate: 0, FaultSeed: 99}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 150, 299} {
		a, err := plain.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tuned.Query(db.Vectors[q], k)
		if err != nil {
			t.Fatal(err)
		}
		if b.Degraded || b.ShardErrs != nil || len(b.FailedShards) != 0 {
			t.Fatalf("zero-rate answer degraded: %+v", b)
		}
		if len(a.TopK) != len(b.TopK) || a.Makespan != b.Makespan || a.EnergyJ != b.EnergyJ {
			t.Fatalf("zero-rate answers diverge: %+v vs %+v", a, b)
		}
		for i := range a.TopK {
			if a.TopK[i] != b.TopK[i] {
				t.Fatalf("entry %d diverges: %+v vs %+v", i, a.TopK[i], b.TopK[i])
			}
		}
	}
}

// TestEnginesAllShardsFail: rate 1 kills every shard; the batch returns a
// joined error rather than an empty degraded answer.
func TestEnginesAllShardsFail(t *testing.T) {
	e, db := enginesFixture(t, 2, 100)
	if err := e.SetTolerance(Tolerance{FaultRate: 1, FaultSeed: 3}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query(db.Vectors[0], 3)
	if err == nil {
		t.Fatal("all-shards-failed query succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
}

// TestEnginesShardTimeout: every shard stalled past the timeout makes the
// query fail with ErrShardTimeout for each shard.
func TestEnginesShardTimeout(t *testing.T) {
	e, db := enginesFixture(t, 2, 100)
	err := e.SetTolerance(Tolerance{
		DelayRate:    1,
		Delay:        400 * time.Millisecond,
		ShardTimeout: 50 * time.Millisecond,
		FaultSeed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := e.Query(db.Vectors[0], 3)
	if qerr == nil {
		t.Fatal("fully timed-out query succeeded")
	}
	if !errors.Is(qerr, ErrShardTimeout) {
		t.Fatalf("error %v does not wrap ErrShardTimeout", qerr)
	}
}

// TestEnginesQuorumSkipsDelayedShards: with some shards deterministically
// stalled and a quorum equal to the fast-shard count, the cluster answers
// from the fast shards and reports the stalled ones as skipped.
func TestEnginesQuorumSkipsDelayedShards(t *testing.T) {
	const shards, features = 4, 400
	tol := Tolerance{
		DelayRate: 0.5,
		Delay:     2 * time.Second,
		FaultSeed: 12,
	}
	_, delayed := expectedEngineFaults(tol, 0, shards)
	if len(delayed) == 0 || len(delayed) == shards {
		t.Fatalf("seed %d delays %v of %d shards; pick another seed", tol.FaultSeed, delayed, shards)
	}
	tol.Quorum = shards - len(delayed)
	e, db := enginesFixture(t, shards, features)
	if err := e.SetTolerance(tol); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ans, err := e.Query(db.Vectors[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el >= tol.Delay {
		t.Errorf("quorum answer took %v, at least one stalled shard was awaited", el)
	}
	if !ans.Degraded {
		t.Fatal("quorum answer not marked Degraded")
	}
	if len(ans.FailedShards) != len(delayed) {
		t.Fatalf("failed shards %v, expected the delayed set %v", ans.FailedShards, delayed)
	}
	for i := range delayed {
		if ans.FailedShards[i] != delayed[i] {
			t.Fatalf("failed shards %v, expected the delayed set %v", ans.FailedShards, delayed)
		}
	}
	if !errors.Is(ans.ShardErrs, ErrShardSkipped) {
		t.Fatalf("ShardErrs %v does not wrap ErrShardSkipped", ans.ShardErrs)
	}
	if len(ans.TopK) == 0 {
		t.Fatal("quorum answer empty")
	}
}

// TestEnginesQuorumNotMet: when injected failures leave fewer healthy
// shards than the quorum demands, the query fails with the joined report.
func TestEnginesQuorumNotMet(t *testing.T) {
	const shards, features = 4, 400
	tol := Tolerance{FaultRate: 0.4, FaultSeed: 15}
	failed, _ := expectedEngineFaults(tol, 0, shards)
	if len(failed) == 0 || len(failed) == shards {
		t.Fatalf("seed %d fails %v of %d shards; pick another seed", tol.FaultSeed, failed, shards)
	}
	tol.Quorum = shards - len(failed) + 1
	e, db := enginesFixture(t, shards, features)
	if err := e.SetTolerance(tol); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query(db.Vectors[1], 5)
	if err == nil {
		t.Fatal("under-quorum query succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
}

// TestEnginesToleranceValidation rejects malformed policies.
func TestEnginesToleranceValidation(t *testing.T) {
	e, err := NewEngines(2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Tolerance{
		{FaultRate: -0.1},
		{FaultRate: 1.1},
		{DelayRate: 2},
		{Quorum: -1},
		{Quorum: 3},
		{ShardTimeout: -time.Second},
		{Delay: -time.Second},
	}
	for _, tol := range bad {
		if err := e.SetTolerance(tol); err == nil {
			t.Errorf("tolerance %+v accepted", tol)
		}
	}
	if err := e.SetTolerance(Tolerance{Quorum: 2, FaultRate: 0.5}); err != nil {
		t.Errorf("valid tolerance rejected: %v", err)
	}
}

// expectedScanFaults mirrors ShardedScanFaults' injection schedule.
func expectedScanFaults(f ScanFaults, n int) []int {
	root := fault.New(f.Seed)
	var failed []int
	for dev := 0; dev < n; dev++ {
		if root.Forkf("shard%d", dev).Hit(f.ShardFailRate) {
			failed = append(failed, dev)
		}
	}
	return failed
}

// TestShardedScanFaultsDegraded: injected shard failures degrade the scan to
// the healthy subset with the failed shards reported, deterministically.
func TestShardedScanFaultsDegraded(t *testing.T) {
	app, err := workload.ByName("MIR")
	if err != nil {
		t.Fatal(err)
	}
	const n, features = 4, 400_000
	faults := ScanFaults{Seed: 9, ShardFailRate: 0.5}
	want := expectedScanFaults(faults, n)
	if len(want) == 0 || len(want) == n {
		t.Fatalf("seed %d fails %v of %d shards; pick another seed", faults.Seed, want, n)
	}
	res, err := ShardedScanFaults(n, app, accel.LevelChannel, ssd.DefaultConfig(), features, 1000, faults)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("partial failure not marked Degraded")
	}
	if len(res.FailedShards) != len(want) {
		t.Fatalf("failed shards %v, schedule predicts %v", res.FailedShards, want)
	}
	for i := range want {
		if res.FailedShards[i] != want[i] {
			t.Fatalf("failed shards %v, schedule predicts %v", res.FailedShards, want)
		}
	}
	if !errors.Is(res.ShardErrs, fault.ErrInjected) {
		t.Fatalf("ShardErrs %v does not wrap fault.ErrInjected", res.ShardErrs)
	}
	failedSet := make(map[int]bool)
	for _, dev := range want {
		failedSet[dev] = true
	}
	var healthyFeatures int64
	for dev := 0; dev < n; dev++ {
		share := int64(features) / n
		if int64(dev) < int64(features)%n {
			share++
		}
		if failedSet[dev] {
			if res.PerDevice[dev].Elapsed != 0 {
				t.Errorf("failed shard %d has non-zero scan result", dev)
			}
			continue
		}
		healthyFeatures += share
		if res.PerDevice[dev].Elapsed == 0 {
			t.Errorf("healthy shard %d has zero scan result", dev)
		}
	}
	if res.Features != healthyFeatures {
		t.Errorf("degraded Features = %d, healthy shares sum to %d", res.Features, healthyFeatures)
	}
	if res.Makespan <= 0 {
		t.Error("degraded scan has non-positive makespan")
	}

	again, err := ShardedScanFaults(n, app, accel.LevelChannel, ssd.DefaultConfig(), features, 1000, faults)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != res.Makespan || again.Features != res.Features ||
		len(again.FailedShards) != len(res.FailedShards) {
		t.Error("same seed gave a different degraded scan")
	}
}

// TestShardedScanFaultsAllFail: every shard failing yields the joined error.
func TestShardedScanFaultsAllFail(t *testing.T) {
	app, _ := workload.ByName("MIR")
	_, err := ShardedScanFaults(2, app, accel.LevelChannel, ssd.DefaultConfig(), 10_000, 500,
		ScanFaults{Seed: 1, ShardFailRate: 1})
	if err == nil {
		t.Fatal("all-shards-failed scan succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
}

// TestShardedScanFaultsZeroIdentical: a zero-rate fault config is the plain
// sharded scan, bit for bit.
func TestShardedScanFaultsZeroIdentical(t *testing.T) {
	app, _ := workload.ByName("TextQA")
	const n, features = 3, 300_000
	plain, err := ShardedScan(n, app, accel.LevelChannel, ssd.DefaultConfig(), features, 1000)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := ShardedScanFaults(n, app, accel.LevelChannel, ssd.DefaultConfig(), features, 1000,
		ScanFaults{Seed: 42, ShardFailRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Degraded || faulty.ShardErrs != nil || len(faulty.FailedShards) != 0 {
		t.Fatalf("zero-rate scan degraded: %+v", faulty)
	}
	if plain.Makespan != faulty.Makespan || plain.Features != faulty.Features ||
		plain.Activity != faulty.Activity {
		t.Fatalf("zero-rate scan diverges: %+v vs %+v", plain, faulty)
	}
}

// TestShardedScanFaultsValidation rejects malformed rates.
func TestShardedScanFaultsValidation(t *testing.T) {
	app, _ := workload.ByName("MIR")
	for _, rate := range []float64{-0.5, 1.5} {
		if _, err := ShardedScanFaults(2, app, accel.LevelChannel, ssd.DefaultConfig(), 10_000, 500,
			ScanFaults{ShardFailRate: rate}); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}
