// Package cluster models multi-SSD DeepStore deployments (§6.3, Fig. 10b):
// a feature database sharded across several simulated devices, each scanning
// its shard with its own in-storage accelerators. The paper's observation —
// "the compute capability of all DeepStore designs scales linearly with the
// number of SSDs" — follows because shards execute independently; the
// cluster's query latency is the slowest shard (the map-reduce barrier
// before the final top-K merge).
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Result aggregates a sharded scan.
type Result struct {
	// Makespan is the slowest healthy shard's scan time — the query latency.
	Makespan sim.Duration
	// PerDevice holds each shard's scan result, indexed by shard; failed
	// shards keep a zero entry (check FailedShards / ShardErrs).
	PerDevice []accel.ScanResult
	// Activity sums the healthy shards' energy-model activity.
	Activity energy.Activity
	// Features is the total comparisons across healthy shards.
	Features int64

	// Degraded reports that at least one shard failed and the aggregate
	// covers only the healthy subset.
	Degraded bool
	// FailedShards lists the failed shard indices in shard order.
	FailedShards []int
	// ShardErrs joins every failed shard's error (errors.Join); nil when
	// the cluster is healthy.
	ShardErrs error
}

// Seconds returns the makespan in seconds.
func (r Result) Seconds() float64 { return r.Makespan.Seconds() }

// ScanFaults configures deterministic whole-shard failures for a sharded
// scan — the model of a device dropping out of the fan-out mid-query. The
// zero value injects nothing.
type ScanFaults struct {
	// Seed roots the injection stream; shard s draws from Fork("shard<s>"),
	// so the failed set is a pure function of (Seed, ShardFailRate, n).
	Seed int64
	// ShardFailRate is each shard's failure probability in [0, 1].
	ShardFailRate float64
}

// ShardedScan shards `features` of the application's database across n
// devices of the given configuration and scans every shard at the given
// accelerator level. Shards are balanced to within one feature.
//
// The shards really do scan in parallel: each device owns a private
// discrete-event engine, so the per-shard simulations run concurrently on
// the host and the aggregate is deterministic regardless of completion
// order (results are reduced in shard order).
func ShardedScan(n int, app *workload.App, level accel.Level, devCfg ssd.Config, features, window int64) (Result, error) {
	return ShardedScanFaults(n, app, level, devCfg, features, window, ScanFaults{})
}

// ShardedScanFaults is ShardedScan with injected shard failures and graceful
// degradation: every shard error is collected (errors.Join), and as long as
// one shard survives the scan returns the healthy subset's aggregate marked
// Degraded instead of throwing the whole query away. Only when every shard
// fails (or the request itself is invalid) is an error returned.
func ShardedScanFaults(n int, app *workload.App, level accel.Level, devCfg ssd.Config, features, window int64, faults ScanFaults) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("cluster: %d devices invalid", n)
	}
	if features < int64(n) {
		return Result{}, fmt.Errorf("cluster: %d features cannot shard across %d devices", features, n)
	}
	if faults.ShardFailRate < 0 || faults.ShardFailRate > 1 {
		return Result{}, fmt.Errorf("cluster: shard fail rate %v outside [0, 1]", faults.ShardFailRate)
	}
	var inj *fault.Injector
	if faults.ShardFailRate > 0 {
		inj = fault.New(faults.Seed)
	}
	outs := make([]accel.ScanResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for dev := 0; dev < n; dev++ {
		share := features / int64(n)
		if int64(dev) < features%int64(n) {
			share++
		}
		wg.Add(1)
		go func(dev int, share int64) {
			defer wg.Done()
			if inj != nil && inj.Forkf("shard%d", dev).Hit(faults.ShardFailRate) {
				errs[dev] = fmt.Errorf("cluster: shard %d: %w", dev, fault.ErrInjected)
				return
			}
			e := sim.NewEngine()
			device, err := ssd.New(e, devCfg)
			if err != nil {
				errs[dev] = fmt.Errorf("cluster: shard %d: %w", dev, err)
				return
			}
			meta, err := device.CreateDB(fmt.Sprintf("%s-shard%d", app.Name, dev), app.FeatureBytes(), share)
			if err != nil {
				errs[dev] = fmt.Errorf("cluster: shard %d: %w", dev, err)
				return
			}
			out, err := accel.Scan(accel.ScanRequest{
				Device:                 device,
				Spec:                   accel.SpecForLevel(level, devCfg),
				Net:                    app.SCN,
				Layout:                 meta.Layout,
				WindowFeaturesPerAccel: window,
			})
			if err != nil {
				errs[dev] = fmt.Errorf("cluster: shard %d: %w", dev, err)
				return
			}
			outs[dev] = out
		}(dev, share)
	}
	wg.Wait()
	res := Result{PerDevice: outs}
	var failed []error
	for dev := 0; dev < n; dev++ {
		if errs[dev] != nil {
			res.FailedShards = append(res.FailedShards, dev)
			failed = append(failed, errs[dev])
			continue
		}
		out := outs[dev]
		res.Activity.Add(out.Activity)
		res.Features += out.Features
		if out.Elapsed > res.Makespan {
			res.Makespan = out.Elapsed
		}
	}
	if len(failed) == n {
		return Result{}, errors.Join(failed...)
	}
	if len(failed) > 0 {
		res.Degraded = true
		res.ShardErrs = errors.Join(failed...)
	}
	return res, nil
}

// Imbalance reports the relative gap between the slowest and fastest
// healthy shard (0 for a perfectly balanced cluster). Failed shards' zero
// entries are excluded.
func (r Result) Imbalance() float64 {
	min, max := sim.Duration(0), sim.Duration(0)
	seen := false
	for _, d := range r.PerDevice {
		if d.Elapsed == 0 {
			continue
		}
		if !seen || d.Elapsed < min {
			min = d.Elapsed
		}
		if !seen || d.Elapsed > max {
			max = d.Elapsed
		}
		seen = true
	}
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}
