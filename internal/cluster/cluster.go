// Package cluster models multi-SSD DeepStore deployments (§6.3, Fig. 10b):
// a feature database sharded across several simulated devices, each scanning
// its shard with its own in-storage accelerators. The paper's observation —
// "the compute capability of all DeepStore designs scales linearly with the
// number of SSDs" — follows because shards execute independently; the
// cluster's query latency is the slowest shard (the map-reduce barrier
// before the final top-K merge).
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Result aggregates a sharded scan.
type Result struct {
	// Makespan is the slowest shard's scan time — the query latency.
	Makespan sim.Duration
	// PerDevice holds each shard's scan result.
	PerDevice []accel.ScanResult
	// Activity sums all shards' energy-model activity.
	Activity energy.Activity
	// Features is the total comparisons across shards.
	Features int64
}

// Seconds returns the makespan in seconds.
func (r Result) Seconds() float64 { return r.Makespan.Seconds() }

// ShardedScan shards `features` of the application's database across n
// devices of the given configuration and scans every shard at the given
// accelerator level. Shards are balanced to within one feature.
//
// The shards really do scan in parallel: each device owns a private
// discrete-event engine, so the per-shard simulations run concurrently on
// the host and the aggregate is deterministic regardless of completion
// order (results are reduced in shard order).
func ShardedScan(n int, app *workload.App, level accel.Level, devCfg ssd.Config, features, window int64) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("cluster: %d devices invalid", n)
	}
	if features < int64(n) {
		return Result{}, fmt.Errorf("cluster: %d features cannot shard across %d devices", features, n)
	}
	outs := make([]accel.ScanResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for dev := 0; dev < n; dev++ {
		share := features / int64(n)
		if int64(dev) < features%int64(n) {
			share++
		}
		wg.Add(1)
		go func(dev int, share int64) {
			defer wg.Done()
			e := sim.NewEngine()
			device, err := ssd.New(e, devCfg)
			if err != nil {
				errs[dev] = err
				return
			}
			meta, err := device.CreateDB(fmt.Sprintf("%s-shard%d", app.Name, dev), app.FeatureBytes(), share)
			if err != nil {
				errs[dev] = err
				return
			}
			outs[dev], errs[dev] = accel.Scan(accel.ScanRequest{
				Device:                 device,
				Spec:                   accel.SpecForLevel(level, devCfg),
				Net:                    app.SCN,
				Layout:                 meta.Layout,
				WindowFeaturesPerAccel: window,
			})
		}(dev, share)
	}
	wg.Wait()
	var res Result
	for dev := 0; dev < n; dev++ {
		if errs[dev] != nil {
			return Result{}, errs[dev]
		}
		out := outs[dev]
		res.PerDevice = append(res.PerDevice, out)
		res.Activity.Add(out.Activity)
		res.Features += out.Features
		if out.Elapsed > res.Makespan {
			res.Makespan = out.Elapsed
		}
	}
	return res, nil
}

// Imbalance reports the relative gap between the slowest and fastest shard
// (0 for a perfectly balanced cluster).
func (r Result) Imbalance() float64 {
	if len(r.PerDevice) == 0 {
		return 0
	}
	min, max := r.PerDevice[0].Elapsed, r.PerDevice[0].Elapsed
	for _, d := range r.PerDevice[1:] {
		if d.Elapsed < min {
			min = d.Elapsed
		}
		if d.Elapsed > max {
			max = d.Elapsed
		}
	}
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}
