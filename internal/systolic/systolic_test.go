package systolic

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func channelConfig() Config {
	// Table 3 channel-level accelerator: 16×64 OS @ 800 MHz, 512 KB.
	return Config{Rows: 16, Cols: 64, FreqHz: 800e6, Dataflow: OutputStationary,
		ScratchpadBytes: 512 << 10, LayerOverhead: 64}
}

func fcDims(in, out int) nn.LayerDims {
	fc := nn.NewFC("fc", in, out, nn.ActNone)
	return nn.LayerDims{
		Name: "fc", Kind: nn.KindFC,
		In: tensor.Shape{in}, Out: tensor.Shape{out},
		FLOPs: fc.FLOPs(tensor.Shape{in}), Weights: fc.WeightCount(),
	}
}

func ewDims(n int) nn.LayerDims {
	return nn.LayerDims{Name: "ew", Kind: nn.KindElementwise,
		In: tensor.Shape{n}, Out: tensor.Shape{n}, FLOPs: int64(n)}
}

func convDims(h, w, c, k, r, s, stride, pad int) nn.LayerDims {
	cv := nn.NewConv("conv", h, w, c, k, r, s, stride, pad, nn.ActNone)
	in := tensor.Shape{h, w, c}
	return nn.LayerDims{
		Name: "conv", Kind: nn.KindConv,
		In: in, Out: cv.OutputShape(in),
		FLOPs: cv.FLOPs(in), Weights: cv.WeightCount(),
		K: k, R: r, S: s, C: c, Stride: stride,
	}
}

func TestFCCostOSExact(t *testing.T) {
	// FC 512x512 on 16x64 OS: effP = min(1024, 512 outputs) = 512,
	// compute = 262144/512 = 512 = reduction floor; fill = 78; overhead 64.
	cfg := channelConfig()
	lc := cfg.LayerCost(fcDims(512, 512))
	want := int64(512 + (16 + 64 - 2) + 64)
	if lc.Cycles != want {
		t.Errorf("cycles = %d, want %d", lc.Cycles, want)
	}
	if lc.MACs != 512*512 {
		t.Errorf("MACs = %d, want %d", lc.MACs, 512*512)
	}
	if lc.Utilization <= 0 || lc.Utilization > 1 {
		t.Errorf("utilization = %v", lc.Utilization)
	}
	if lc.WeightBytes != (512*512+512)*4 {
		t.Errorf("weight bytes = %d", lc.WeightBytes)
	}
}

func TestElementwiseRowParallelism(t *testing.T) {
	// §4.3: EW throughput scales with the number of rows.
	cfg := channelConfig() // 16 rows
	lc := cfg.LayerCost(ewDims(512))
	want := int64(512/16) + cfg.LayerOverhead
	if lc.Cycles != want {
		t.Errorf("ew cycles = %d, want %d", lc.Cycles, want)
	}
	wide := cfg
	wide.Rows = 32
	if wc := wide.LayerCost(ewDims(512)); wc.Cycles >= lc.Cycles {
		t.Errorf("more rows did not speed up EW: %d vs %d", wc.Cycles, lc.Cycles)
	}
}

func TestConvCostCountsMACs(t *testing.T) {
	cfg := channelConfig()
	d := convDims(32, 22, 16, 16, 3, 3, 1, 1)
	lc := cfg.LayerCost(d)
	wantMACs := int64(32*22) * int64(3*3*16) * 16
	if lc.MACs != wantMACs {
		t.Errorf("conv MACs = %d, want %d", lc.MACs, wantMACs)
	}
	if lc.Cycles <= 0 {
		t.Error("conv cycles not positive")
	}
	// FLOPs = 2*MACs must match the nn layer's own accounting.
	if 2*lc.MACs != d.FLOPs {
		t.Errorf("2*MACs = %d != layer FLOPs %d", 2*lc.MACs, d.FLOPs)
	}
}

func TestWSDataflowCost(t *testing.T) {
	// Chip-level config: 4×32 WS @ 400 MHz (Table 3).
	cfg := Config{Rows: 4, Cols: 32, FreqHz: 400e6, Dataflow: WeightStationary,
		ScratchpadBytes: 512 << 10, LayerOverhead: 64}
	lc := cfg.LayerCost(fcDims(200, 200))
	// tiles = ceil(200/4)*ceil(200/32) = 350, each paying load R=4, stream
	// M=1, and the rotate overhead 8; plus fill 34 and layer overhead 64.
	want := int64(350*(4+1+8) + 34 + 64)
	if lc.WeightLoadCycles != 350*4 {
		t.Errorf("weight load cycles = %d, want 1400", lc.WeightLoadCycles)
	}
	if lc.Cycles != want {
		t.Errorf("WS cycles = %d, want %d", lc.Cycles, want)
	}
}

func TestNetworkCostAggregates(t *testing.T) {
	cfg := channelConfig()
	tir, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	plan := tir.SCN.LayerPlan()
	nc := cfg.NetworkCost(plan)
	if len(nc.Layers) != len(plan) {
		t.Fatalf("layer costs = %d, want %d", len(nc.Layers), len(plan))
	}
	var cyc, macs int64
	for _, l := range nc.Layers {
		cyc += l.Cycles
		macs += l.MACs
	}
	if nc.Cycles != cyc || nc.MACs != macs {
		t.Error("network cost does not equal sum of layer costs")
	}
	// GEMM layers count 2 FLOPs per MAC; the 512-wide element-wise combine
	// counts 1 FLOP per element, so 2·MACs = FLOPs + 512.
	if 2*nc.MACs != tir.SCN.FLOPsPerComparison()+512 {
		t.Errorf("2*MACs = %d, want FLOPs+512 = %d", 2*nc.MACs, tir.SCN.FLOPsPerComparison()+512)
	}
	if nc.WeightBytes != tir.SCN.WeightBytes() {
		t.Errorf("weight bytes = %d, want %d", nc.WeightBytes, tir.SCN.WeightBytes())
	}
	if s := nc.PerFeatureSeconds(cfg); s <= 0 || s > 1e-3 {
		t.Errorf("per-feature time = %v s, implausible", s)
	}
}

func TestAspects(t *testing.T) {
	as := Aspects(1024)
	// All power-of-two (r, c) with r*c <= 1024: sum_{i=0..10} (11-i) = 66.
	if len(as) != 66 {
		t.Fatalf("1024 has %d aspects, want 66", len(as))
	}
	full := 0
	for _, a := range as {
		if a.Rows*a.Cols > 1024 {
			t.Errorf("aspect %v exceeds budget", a)
		}
		if a.Rows*a.Cols == 1024 {
			full++
		}
	}
	if full != 11 {
		t.Errorf("%d full-budget aspects, want 11", full)
	}
}

func TestAspectsRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two budget did not panic")
		}
	}()
	Aspects(100)
}

// TestFCSaturatesAt512 reproduces the Figure 6 FC observation: for the
// largest studied FC layer (512 outputs), performance stops improving once
// the array reaches 512 PEs.
func TestFCSaturatesAt512(t *testing.T) {
	plan := []nn.LayerDims{fcDims(512, 512)}
	cycAt := func(pes int) int64 {
		_, cost := BestAspect(pes, 800e6, OutputStationary, 64, plan)
		return cost.Cycles
	}
	c128, c256, c512, c1024, c4096 := cycAt(128), cycAt(256), cycAt(512), cycAt(1024), cycAt(4096)
	if !(c128 > c256 && c256 > c512) {
		t.Errorf("FC not improving up to 512 PEs: %d, %d, %d", c128, c256, c512)
	}
	// Beyond 512 the gain must be negligible (< 5%).
	if float64(c512-c1024) > 0.05*float64(c512) {
		t.Errorf("FC still improving past 512 PEs: %d -> %d", c512, c1024)
	}
	if float64(c512-c4096) > 0.05*float64(c512) {
		t.Errorf("FC still improving at 4096 PEs: %d -> %d", c512, c4096)
	}
}

// TestConvSaturatesAfterFC reproduces the Figure 6 conv observation: the
// conv layer keeps scaling past the FC saturation point and flattens later.
func TestConvSaturatesAfterFC(t *testing.T) {
	plan := []nn.LayerDims{convDims(32, 22, 16, 16, 3, 3, 1, 1)}
	cycAt := func(pes int) int64 {
		_, cost := BestAspect(pes, 800e6, OutputStationary, 64, plan)
		return cost.Cycles
	}
	c512, c1024 := cycAt(512), cycAt(1024)
	if float64(c512-c1024) < 0.10*float64(c512) {
		t.Errorf("conv already saturated at 512: %d -> %d", c512, c1024)
	}
	c8192, c32768 := cycAt(8192), cycAt(32768)
	if float64(c8192-c32768) > 0.05*float64(c8192) {
		t.Errorf("conv still improving at 32768 PEs: %d -> %d", c8192, c32768)
	}
	if c32768 > c8192 {
		t.Errorf("conv slower with more PEs: %d -> %d", c8192, c32768)
	}
}

// Property: more PEs (with best aspect) never makes the network slower by
// more than fill-overhead noise, and utilization stays in (0, 1].
func TestBestAspectMonotonicProperty(t *testing.T) {
	tir, _ := workload.ByName("TIR")
	plan := tir.SCN.LayerPlan()
	f := func(shift uint8) bool {
		pes := 128 << (shift % 8) // 128..16384
		_, small := BestAspect(pes, 800e6, OutputStationary, 64, plan)
		_, big := BestAspect(pes*2, 800e6, OutputStationary, 64, plan)
		// Allow 1% regression for fill effects.
		return float64(big.Cycles) <= 1.01*float64(small.Cycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := channelConfig()
	for _, a := range workload.Apps() {
		nc := cfg.NetworkCost(a.SCN.LayerPlan())
		u := nc.Utilization(cfg)
		if u <= 0 || u > 1 {
			t.Errorf("%s: utilization = %v", a.Name, u)
		}
	}
}

func TestWeightsResident(t *testing.T) {
	cfg := channelConfig() // 512 KB scratchpad
	if cfg.WeightsResident(512 << 10) {
		t.Error("full-scratchpad weights reported resident (no activation room)")
	}
	if !cfg.WeightsResident(256 << 10) {
		t.Error("half-scratchpad weights not resident")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 4, FreqHz: 1e9},
		{Rows: 4, Cols: 0, FreqHz: 1e9},
		{Rows: 4, Cols: 4, FreqHz: 0},
		{Rows: 4, Cols: 4, FreqHz: 1e9, ScratchpadBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	good := channelConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.PEs() != 1024 {
		t.Errorf("PEs = %d, want 1024", good.PEs())
	}
	if good.CyclePs() != 1250 {
		t.Errorf("cycle = %v ps, want 1250", good.CyclePs())
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "OS" || WeightStationary.String() != "WS" {
		t.Error("dataflow strings wrong")
	}
}
