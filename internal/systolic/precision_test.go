package systolic

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPrecisionProperties(t *testing.T) {
	cases := []struct {
		p     Precision
		bytes int64
		lanes int64
	}{
		{FP32, 4, 1},
		{FP16, 2, 2},
		{INT8, 1, 4},
	}
	for _, c := range cases {
		if c.p.ElementBytes() != c.bytes {
			t.Errorf("%v element bytes = %d", c.p, c.p.ElementBytes())
		}
		if c.p.MACsPerPE() != c.lanes {
			t.Errorf("%v lanes = %d", c.p, c.p.MACsPerPE())
		}
		if s := c.p.MACEnergyScale(); s <= 0 || s > 1 {
			t.Errorf("%v energy scale = %v", c.p, s)
		}
	}
	if FP32.String() != "fp32" || INT8.String() != "int8" {
		t.Error("precision strings wrong")
	}
}

func fcPlan(in, out int) []nn.LayerDims {
	fc := nn.NewFC("fc", in, out, nn.ActNone)
	return []nn.LayerDims{{
		Name: "fc", Kind: nn.KindFC,
		In: tensor.Shape{in}, Out: tensor.Shape{out},
		FLOPs: fc.FLOPs(tensor.Shape{in}), Weights: fc.WeightCount(),
	}}
}

// TestLowerPrecisionIsFaster: halving element width must never slow a layer
// and should speed up compute-bound shapes.
func TestLowerPrecisionIsFaster(t *testing.T) {
	base := Config{Rows: 16, Cols: 64, FreqHz: 800e6, Dataflow: OutputStationary, LayerOverhead: 64}
	plan := fcPlan(1024, 448) // MIR fc1: reduction-floor bound at FP32
	var prev int64
	for i, p := range []Precision{FP32, FP16, INT8} {
		cfg := base
		cfg.Precision = p
		c := cfg.NetworkCost(plan).Cycles
		if i > 0 && c > prev {
			t.Errorf("%v slower than wider precision: %d > %d", p, c, prev)
		}
		prev = c
	}
	// INT8 quarters the reduction floor: 1024/4 + overheads.
	cfg := base
	cfg.Precision = INT8
	c := cfg.NetworkCost(plan).Cycles
	if c > 1024/2 {
		t.Errorf("INT8 cycles = %d, want well under the FP32 floor 1024", c)
	}
}

func TestLowerPrecisionShrinksTraffic(t *testing.T) {
	base := Config{Rows: 16, Cols: 64, FreqHz: 800e6, Dataflow: OutputStationary, LayerOverhead: 64}
	plan := fcPlan(512, 512)
	f32 := base
	i8 := base
	i8.Precision = INT8
	c32 := f32.NetworkCost(plan)
	c8 := i8.NetworkCost(plan)
	if c8.SRAMReadBytes*4 != c32.SRAMReadBytes {
		t.Errorf("INT8 SRAM reads %d, want quarter of %d", c8.SRAMReadBytes, c32.SRAMReadBytes)
	}
	if c8.WeightBytes*4 != c32.WeightBytes {
		t.Errorf("INT8 weights %d, want quarter of %d", c8.WeightBytes, c32.WeightBytes)
	}
}

func TestPrecisionWSDataflow(t *testing.T) {
	base := Config{Rows: 4, Cols: 32, FreqHz: 400e6, Dataflow: WeightStationary, LayerOverhead: 64}
	plan := fcPlan(200, 200)
	f32 := base.NetworkCost(plan).Cycles
	i8cfg := base
	i8cfg.Precision = INT8
	i8 := i8cfg.NetworkCost(plan).Cycles
	if i8 >= f32 {
		t.Errorf("INT8 WS (%d cycles) not faster than FP32 (%d)", i8, f32)
	}
}
