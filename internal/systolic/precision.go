package systolic

import "fmt"

// Precision selects the arithmetic width of the PE array. The paper
// evaluates 32-bit floating point throughout ("to maintain the same accuracy
// as the original application", §5) and names quantization and low-precision
// operation as an extension the DeepStore architecture can absorb (§7); the
// FP16/INT8 modes implement that extension: narrower elements let each PE
// lane retire more MACs per cycle, shrink every on-chip stream, and — most
// importantly for an in-storage design — shrink the feature vectors on
// flash, cutting the dominant I/O term.
type Precision int

const (
	// FP32 is the paper's evaluation precision.
	FP32 Precision = iota
	// FP16 halves element size and doubles per-PE MAC throughput.
	FP16
	// INT8 quarters element size and quadruples per-PE MAC throughput.
	INT8
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ElementBytes returns the storage size of one value.
func (p Precision) ElementBytes() int64 {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		panic(fmt.Sprintf("systolic: unknown precision %d", int(p)))
	}
}

// MACsPerPE returns how many MACs one PE lane retires per cycle.
func (p Precision) MACsPerPE() int64 { return 4 / p.ElementBytes() }

// MACEnergyScale returns the per-MAC energy relative to FP32 (Horowitz
// ISSCC'14 scaling: FP16 ≈ 0.35×, INT8 ≈ 0.12×).
func (p Precision) MACEnergyScale() float64 {
	switch p {
	case FP32:
		return 1
	case FP16:
		return 0.35
	case INT8:
		return 0.12
	default:
		panic(fmt.Sprintf("systolic: unknown precision %d", int(p)))
	}
}
