package systolic

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkNetworkCostAllApps(b *testing.B) {
	cfg := Config{Rows: 16, Cols: 64, FreqHz: 800e6, Dataflow: OutputStationary,
		ScratchpadBytes: 512 << 10, LayerOverhead: 64}
	apps := workload.Apps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			cfg.NetworkCost(a.SCN.LayerPlan())
		}
	}
}

func BenchmarkBestAspect(b *testing.B) {
	tir, _ := workload.ByName("TIR")
	plan := tir.SCN.LayerPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestAspect(1024, 800e6, OutputStationary, 64, plan)
	}
}
