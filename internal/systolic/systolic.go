// Package systolic models the timing and memory-access behaviour of the
// rectangular systolic-array accelerators in DeepStore (§4.3), playing the
// role SCALE-Sim plays in the paper's simulator. It is a first-order
// analytical model: every layer of a similarity comparison network is lowered
// to a GEMM (or an element-wise stream), mapped onto an R×C processing-engine
// array under an output-stationary (OS) or weight-stationary (WS) dataflow,
// and costed in cycles plus scratchpad/backing-store traffic.
package systolic

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Dataflow selects the mapping strategy (Table 3: OS for SSD- and
// channel-level accelerators, WS for chip-level).
type Dataflow int

const (
	// OutputStationary keeps partial sums in the PEs while inputs and
	// weights stream through; good reuse for FC layers (§4.5).
	OutputStationary Dataflow = iota
	// WeightStationary pins a weight tile in the PEs while activations
	// stream; minimizes weight bandwidth for the chip-level design (§4.5).
	WeightStationary
)

// String names the dataflow as in Table 3.
func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "OS"
	case WeightStationary:
		return "WS"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// Config describes one systolic-array accelerator instance.
type Config struct {
	Rows, Cols int
	FreqHz     float64
	Dataflow   Dataflow
	// ScratchpadBytes is the accelerator-local SRAM (Table 3).
	ScratchpadBytes int64
	// LayerOverhead is the fixed controller/FSM cost charged per layer
	// (weight-address setup, FSM transitions, drain bookkeeping).
	LayerOverhead int64
	// SpadLatency is the scratchpad access latency in cycles, which scales
	// the array fill/drain cost. §5: 4 cycles for the SSD-level
	// accelerator's large shared scratchpad, 1 for channel/chip level.
	// Zero is treated as 1.
	SpadLatency int64
	// Precision selects the arithmetic width; the zero value is FP32, the
	// paper's evaluation setting.
	Precision Precision
}

func (c Config) spadLatency() int64 {
	if c.SpadLatency <= 0 {
		return 1
	}
	return c.SpadLatency
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("systolic: array %dx%d invalid", c.Rows, c.Cols)
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("systolic: frequency %v invalid", c.FreqHz)
	}
	if c.ScratchpadBytes < 0 {
		return fmt.Errorf("systolic: negative scratchpad")
	}
	return nil
}

// PEs returns the processing-engine count.
func (c Config) PEs() int { return c.Rows * c.Cols }

// CyclePs returns the cycle time in picoseconds.
func (c Config) CyclePs() float64 { return 1e12 / c.FreqHz }

// gemm captures the GEMM lowering of a layer: an M×K by K×N product.
// FC layers on a single feature have M=1; conv layers have M = output
// pixels, K = R·S·C reduction, N = filter count (im2col view).
type gemm struct {
	M, K, N int64
}

func lowerGEMM(d nn.LayerDims) (gemm, bool) {
	switch d.Kind {
	case nn.KindFC:
		return gemm{M: 1, K: int64(d.In.Elems()), N: int64(d.Out.Elems())}, true
	case nn.KindConv:
		out := d.Out
		if len(out) != 3 {
			return gemm{}, false
		}
		return gemm{
			M: int64(out[0]) * int64(out[1]),
			K: int64(d.R) * int64(d.S) * int64(d.C),
			N: int64(d.K),
		}, true
	default:
		return gemm{}, false
	}
}

// LayerCost is the modeled cost of one layer on one accelerator.
type LayerCost struct {
	Name   string
	Kind   nn.Kind
	Cycles int64
	MACs   int64
	// Utilization is MACs / (Cycles × PEs), the fraction of PE-cycles doing
	// useful multiply-accumulates.
	Utilization float64
	// SRAM traffic in bytes (reads of inputs and weights, writes of
	// outputs and partial sums) against the accelerator scratchpad.
	SRAMReadBytes  int64
	SRAMWriteBytes int64
	// WeightBytes is the layer's parameter footprint; whether it is
	// resident or streamed is decided by the accelerator composition.
	WeightBytes int64
	// WeightLoadCycles is the portion of Cycles spent loading weight tiles
	// into the array (WS dataflow only). When several features are batched
	// through a pinned weight tile, this portion amortizes across the
	// batch.
	WeightLoadCycles int64
}

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// LayerCost models one layer.
func (c Config) LayerCost(d nn.LayerDims) LayerCost {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	eb := c.Precision.ElementBytes()
	lanes := c.Precision.MACsPerPE()
	lc := LayerCost{Name: d.Name, Kind: d.Kind, WeightBytes: d.Weights * eb}
	R, C := int64(c.Rows), int64(c.Cols)

	if d.Kind == nn.KindElementwise {
		// The modified array feeds one operand pair per row per cycle
		// (§4.3: an input line per row in the first column speeds up
		// element-wise ops by the number of rows); narrower elements pack
		// more lanes per row.
		n := int64(d.In.Elems())
		lc.MACs = n
		lc.Cycles = ceilDiv(n, R*lanes) + c.LayerOverhead
		lc.SRAMReadBytes = 2 * n * eb
		lc.SRAMWriteBytes = n * eb
		lc.Utilization = util(lc.MACs, lc.Cycles, R*C*lanes)
		return lc
	}

	g, ok := lowerGEMM(d)
	if !ok {
		panic(fmt.Sprintf("systolic: cannot lower layer %q (%v)", d.Name, d.Kind))
	}
	lc.MACs = g.M * g.K * g.N
	fill := (R + C - 2) * c.spadLatency()

	switch c.Dataflow {
	case OutputStationary:
		// OS semantics: each PE owns one output element and accumulates
		// its K-deep reduction temporally. Parallelism is therefore
		// bounded by the number of output elements (M·N) — this is the
		// §4.5 observation that the studied layers "require less than
		// 1024 multiply-accumulates per cycle for a feature vector",
		// which makes FC layers saturate at their output width.
		effP := minI64(R*C*lanes, g.M*g.N*lanes)
		compute := ceilDiv(lc.MACs, effP)
		// The reduction operands stream through the array at `lanes`
		// elements per lane per cycle, so a fold can never finish faster
		// than the longer of the reduction depth and the output-pixel
		// stream at that rate.
		floor := ceilDiv(maxI64(g.K, g.M), lanes)
		lc.Cycles = maxI64(compute, floor) + fill + c.LayerOverhead
		// Traffic: inputs re-read once per output-column fold; weights
		// once per output-row fold; outputs written once.
		fm := ceilDiv(g.M, R)
		fn := ceilDiv(g.N, C)
		lc.SRAMReadBytes = (g.M*g.K*fn + g.K*g.N*fm) * eb
		lc.SRAMWriteBytes = g.M * g.N * eb
	case WeightStationary:
		// WS semantics: the weight matrix is processed tile by tile — a
		// tile of R (reduction) × C (outputs) weights is pinned, the
		// activations stream through, and the array rotates to the next
		// tile. Each tile pays its row-by-row load (R), the activation
		// stream (M), and a fixed rotate/partial-sum spill overhead; tiles
		// do not pipeline, which is what makes the small chip-level array
		// compute-limited (§6.2).
		const tileOverhead = 8
		tk := ceilDiv(g.K, R*lanes)
		tn := ceilDiv(g.N, C)
		tiles := tk * tn
		lc.WeightLoadCycles = tiles * R
		lc.Cycles = tiles*(R+g.M+tileOverhead) + fill + c.LayerOverhead
		// Activations re-read per output tile; weights read once; partial
		// sums spill/refill once per reduction tile beyond the first.
		lc.SRAMReadBytes = (g.M*g.K*tn + g.K*g.N + g.M*g.N*(tk-1)) * eb
		lc.SRAMWriteBytes = (g.M*g.N + g.M*g.N*(tk-1)) * eb
	default:
		panic(fmt.Sprintf("systolic: unknown dataflow %d", c.Dataflow))
	}
	lc.Utilization = util(lc.MACs, lc.Cycles, R*C)
	return lc
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func util(macs, cycles, pes int64) float64 {
	if cycles <= 0 || pes <= 0 {
		return 0
	}
	u := float64(macs) / (float64(cycles) * float64(pes))
	return math.Min(u, 1)
}

// NetworkCost aggregates per-layer costs for one feature comparison.
type NetworkCost struct {
	Layers []LayerCost
	// Cycles is the end-to-end latency of one comparison in cycles
	// (layers execute sequentially on the single array).
	Cycles int64
	MACs   int64
	// SRAMReadBytes/SRAMWriteBytes are total scratchpad traffic.
	SRAMReadBytes  int64
	SRAMWriteBytes int64
	// WeightBytes is the whole model's parameter footprint.
	WeightBytes int64
	// WeightLoadCycles is the array weight-load portion of Cycles (WS).
	WeightLoadCycles int64
}

// PerFeatureSeconds converts the comparison latency to seconds.
func (n NetworkCost) PerFeatureSeconds(c Config) float64 {
	return float64(n.Cycles) / c.FreqHz
}

// Utilization is the aggregate PE utilization across the network.
func (n NetworkCost) Utilization(c Config) float64 {
	return util(n.MACs, n.Cycles, int64(c.PEs()))
}

// NetworkCost models a full similarity comparison (all layers, one feature).
func (c Config) NetworkCost(plan []nn.LayerDims) NetworkCost {
	var nc NetworkCost
	for _, d := range plan {
		lc := c.LayerCost(d)
		nc.Layers = append(nc.Layers, lc)
		nc.Cycles += lc.Cycles
		nc.MACs += lc.MACs
		nc.SRAMReadBytes += lc.SRAMReadBytes
		nc.SRAMWriteBytes += lc.SRAMWriteBytes
		nc.WeightBytes += lc.WeightBytes
		nc.WeightLoadCycles += lc.WeightLoadCycles
	}
	return nc
}

// AmortizedCycles returns the per-feature latency when batch features stream
// through each pinned weight tile, amortizing the WS weight-load cost.
func (n NetworkCost) AmortizedCycles(batch int64) int64 {
	if batch <= 1 {
		return n.Cycles
	}
	return n.Cycles - n.WeightLoadCycles + ceilDiv(n.WeightLoadCycles, batch)
}

// WeightsResident reports whether the model's weights fit in the scratchpad
// alongside a working buffer for activations (one quarter reserved).
func (c Config) WeightsResident(weightBytes int64) bool {
	return weightBytes <= c.ScratchpadBytes*3/4
}

// Aspect is one rows×cols shape of a PE budget.
type Aspect struct {
	Rows, Cols int
}

// Aspects enumerates the power-of-two array shapes that fit a power-of-two PE
// budget, the shape space searched in §4.5. Shapes using fewer PEs than the
// budget are included: a larger budget can always clock-gate surplus PEs, so
// the search space of budget 2P strictly contains that of budget P.
func Aspects(pes int) []Aspect {
	if pes <= 0 || pes&(pes-1) != 0 {
		panic(fmt.Sprintf("systolic: PE budget %d not a power of two", pes))
	}
	var out []Aspect
	for r := 1; r <= pes; r *= 2 {
		for c := 1; r*c <= pes; c *= 2 {
			out = append(out, Aspect{Rows: r, Cols: c})
		}
	}
	return out
}

// BestAspect searches all power-of-two aspect ratios of a PE budget for the
// one minimizing the network's comparison latency, reproducing the §4.5
// design-space methodology. Returns the winning config and its cost.
func BestAspect(pes int, freqHz float64, df Dataflow, overhead int64, plan []nn.LayerDims) (Config, NetworkCost) {
	var bestCfg Config
	var bestCost NetworkCost
	first := true
	for _, a := range Aspects(pes) {
		cfg := Config{Rows: a.Rows, Cols: a.Cols, FreqHz: freqHz, Dataflow: df, LayerOverhead: overhead}
		cost := cfg.NetworkCost(plan)
		if first || cost.Cycles < bestCost.Cycles {
			bestCfg, bestCost, first = cfg, cost, false
		}
	}
	return bestCfg, bestCost
}
