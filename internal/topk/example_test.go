package topk_test

import (
	"fmt"

	"repro/internal/topk"
)

// Example shows the §4.7.1 map-reduce pattern: per-accelerator top-K queues
// merged into the final result.
func Example() {
	// Two accelerators each keep their local top-2.
	a := topk.New(2)
	a.Offer(topk.Entry{FeatureID: 1, Score: 0.9})
	a.Offer(topk.Entry{FeatureID: 2, Score: 0.3})
	a.Offer(topk.Entry{FeatureID: 3, Score: 0.7})

	b := topk.New(2)
	b.Offer(topk.Entry{FeatureID: 4, Score: 0.8})
	b.Offer(topk.Entry{FeatureID: 5, Score: 0.2})

	// The query engine reduces them to the global top-3.
	for _, e := range topk.Merge(3, a, b).Results() {
		fmt.Printf("feature %d score %.1f\n", e.FeatureID, e.Score)
	}
	// Output:
	// feature 1 score 0.9
	// feature 4 score 0.8
	// feature 3 score 0.7
}
