package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOfferKeepsBest(t *testing.T) {
	q := New(3)
	for i, s := range []float32{0.1, 0.9, 0.5, 0.7, 0.2} {
		q.Offer(Entry{FeatureID: int64(i), Score: s})
	}
	got := q.Results()
	want := []float32{0.9, 0.7, 0.5}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i].Score != want[i] {
			t.Errorf("rank %d score = %v, want %v", i, got[i].Score, want[i])
		}
	}
}

func TestOfferReturnValue(t *testing.T) {
	q := New(2)
	if !q.Offer(Entry{FeatureID: 1, Score: 0.5}) {
		t.Error("offer to empty queue rejected")
	}
	if !q.Offer(Entry{FeatureID: 2, Score: 0.6}) {
		t.Error("offer to non-full queue rejected")
	}
	if q.Offer(Entry{FeatureID: 3, Score: 0.1}) {
		t.Error("loser accepted into full queue")
	}
	if !q.Offer(Entry{FeatureID: 4, Score: 0.55}) {
		t.Error("winner rejected from full queue")
	}
}

func TestTieBreakByFeatureID(t *testing.T) {
	q := New(2)
	q.Offer(Entry{FeatureID: 7, Score: 0.5})
	q.Offer(Entry{FeatureID: 3, Score: 0.5})
	q.Offer(Entry{FeatureID: 5, Score: 0.5})
	got := q.Results()
	if got[0].FeatureID != 3 || got[1].FeatureID != 5 {
		t.Errorf("tie break wrong: %+v", got)
	}
}

func TestMin(t *testing.T) {
	q := New(2)
	if _, ok := q.Min(); ok {
		t.Error("min defined on non-full queue")
	}
	q.Offer(Entry{FeatureID: 1, Score: 0.9})
	q.Offer(Entry{FeatureID: 2, Score: 0.3})
	if s, ok := q.Min(); !ok || s != 0.3 {
		t.Errorf("min = %v, %v", s, ok)
	}
}

func TestReset(t *testing.T) {
	q := New(2)
	q.Offer(Entry{FeatureID: 1, Score: 1})
	q.Reset()
	if q.Len() != 0 {
		t.Error("reset did not empty queue")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	New(0)
}

// TestMatchesReferenceSort is the property test: for random score streams,
// the queue equals the top-K of a full sort.
func TestMatchesReferenceSort(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%16) + 1
		rng := rand.New(rand.NewSource(seed))
		n := 100
		entries := make([]Entry, n)
		q := New(k)
		for i := range entries {
			entries[i] = Entry{FeatureID: int64(i), Score: float32(rng.Intn(50)) / 50}
			q.Offer(entries[i])
		}
		sort.Slice(entries, func(i, j int) bool { return less(entries[i], entries[j]) })
		want := entries[:k]
		got := q.Results()
		if len(got) != k {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMergeEqualsGlobalTopK: merging per-accelerator queues must equal the
// top-K over the union, the §4.7.1 map-reduce invariant.
func TestMergeEqualsGlobalTopK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, shards, perShard = 5, 4, 30
		var all []Entry
		qs := make([]*Queue, shards)
		for s := range qs {
			qs[s] = New(k)
			for i := 0; i < perShard; i++ {
				e := Entry{FeatureID: int64(s*perShard + i), Score: float32(rng.Intn(100)) / 100}
				all = append(all, e)
				qs[s].Offer(e)
			}
		}
		merged := Merge(k, qs...)
		ref := New(k)
		for _, e := range all {
			ref.Offer(e)
		}
		got, want := merged.Results(), ref.Results()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeHandlesNil(t *testing.T) {
	q := New(2)
	q.Offer(Entry{FeatureID: 1, Score: 0.5})
	m := Merge(2, nil, q, nil)
	if m.Len() != 1 {
		t.Errorf("merge with nils lost entries: %d", m.Len())
	}
}

func BenchmarkOffer(b *testing.B) {
	q := New(10)
	rng := rand.New(rand.NewSource(1))
	scores := make([]float32, 1024)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Offer(Entry{FeatureID: int64(i), Score: scores[i%1024]})
	}
}
