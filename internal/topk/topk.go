// Package topk implements the top-K selection hardware of the DeepStore
// accelerator controller (§4.3): a bounded priority queue realized as a
// sorted tag array plus a mapping table. As the systolic array emits
// similarity scores, the controller binary-searches the tag array, shifts
// lower-priority tags down, and drops the minimum — exactly the structure
// modeled here. The query engine merges per-accelerator queues into the
// final top-K (§4.7.1).
//
// A Queue is not safe for concurrent use; the parallel scan gives every
// worker its own queue and reduces them with Merge. Because entries are
// totally ordered (Score descending, FeatureID ascending on ties), the
// merged result is independent of both offer order and merge order — the
// property the engine's parallel/serial equivalence tests rely on.
package topk

import "fmt"

// Entry is one candidate result: a feature's identity, its similarity score,
// and the ObjectID (physical address of the feature vector, §4.2) used to
// fetch the raw data.
type Entry struct {
	FeatureID int64
	Score     float32
	ObjectID  uint64
}

// Queue keeps the K highest-scoring entries seen so far. Ties are broken in
// favor of the earlier FeatureID, making results deterministic.
type Queue struct {
	k int
	// entries is kept sorted by descending score (the sorted tag array).
	entries []Entry
}

// New creates a queue keeping the top k entries (k >= 1).
func New(k int) *Queue {
	if k < 1 {
		panic(fmt.Sprintf("topk: k = %d < 1", k))
	}
	return &Queue{k: k, entries: make([]Entry, 0, k)}
}

// K returns the queue's capacity.
func (q *Queue) K() int { return q.k }

// Len returns the current entry count.
func (q *Queue) Len() int { return len(q.entries) }

// less reports whether a outranks b.
func less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.FeatureID < b.FeatureID
}

// Offer considers an entry, returning true if it entered the top-K. The
// insert is a binary search over the tag array followed by a shift, matching
// the §4.3 hardware.
func (q *Queue) Offer(e Entry) bool {
	// Binary search for insertion position (first index where e outranks).
	lo, hi := 0, len(q.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(e, q.entries[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= q.k {
		return false
	}
	if len(q.entries) < q.k {
		q.entries = append(q.entries, Entry{})
	}
	copy(q.entries[lo+1:], q.entries[lo:])
	q.entries[lo] = e
	return true
}

// Min returns the lowest retained score, or ok=false when the queue is not
// yet full (so any score would be admitted).
func (q *Queue) Min() (score float32, ok bool) {
	if len(q.entries) < q.k {
		return 0, false
	}
	return q.entries[len(q.entries)-1].Score, true
}

// Results returns the entries in rank order (best first). The returned slice
// is a copy.
func (q *Queue) Results() []Entry {
	out := make([]Entry, len(q.entries))
	copy(out, q.entries)
	return out
}

// Reset empties the queue for reuse across queries.
func (q *Queue) Reset() { q.entries = q.entries[:0] }

// Merge combines per-accelerator queues into a single top-k, the query
// engine's reduce step (§4.7.1).
func Merge(k int, queues ...*Queue) *Queue {
	out := New(k)
	for _, q := range queues {
		if q == nil {
			continue
		}
		for _, e := range q.entries {
			out.Offer(e)
		}
	}
	return out
}
