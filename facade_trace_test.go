package deepstore

import (
	"bytes"
	"testing"
)

// TestFacadeTraceRoundTrip exercises trace generation, persistence, and
// engine replay through the public facade.
func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := GenerateTrace(TraceConfig{
		Universe: 10, Length: 30, Dist: Zipfian, Alpha: 0.7, Seed: 4,
	})
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Queries) != 30 {
		t.Fatalf("loaded %d queries", len(loaded.Queries))
	}

	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := AppByName("TextQA")
	app.SCN.InitRandom(2)
	db := NewFeatureDB(app, 80, 3)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.ReplayTrace(loaded, model, dbID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.Queries != 30 || report.MeanLatency <= 0 {
		t.Errorf("report = %+v", report)
	}
}

// TestFacadeShardedScan exercises the multi-SSD path through the facade.
func TestFacadeShardedScan(t *testing.T) {
	app, _ := AppByName("MIR")
	res, err := ShardedScan(2, app, LevelChannel, DefaultDeviceConfig(), 128_000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features != 128_000 || res.Makespan <= 0 {
		t.Errorf("cluster result = features %d, makespan %v", res.Features, res.Makespan)
	}
	if len(res.PerDevice) != 2 {
		t.Errorf("%d shards", len(res.PerDevice))
	}
}
