// Quickstart: build a small text-based image retrieval (TIR) feature
// database, load its similarity comparison network into the simulated SSD,
// and run an intelligent query end to end through the DeepStore API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A DeepStore system over the paper's 32-channel, 1 TB evaluation SSD
	// with channel-level accelerators (the best design, §6.2).
	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// TIR: sentence-to-image retrieval, 2 KB feature vectors, an SCN of a
	// vector dot product and three FC layers (Table 1).
	app, err := deepstore.AppByName("TIR")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(1)

	// writeDB: 10,000 synthetic image feature vectors, striped across the
	// SSD's channels and chips (§4.4).
	db := deepstore.NewFeatureDB(app, 10_000, 2)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote database %d: %d features x %d B\n", dbID, db.Len(), app.FeatureBytes())

	// loadModel: ship the SCN in the binary model format (ONNX stand-in).
	blob, err := deepstore.MarshalModel(app.SCN)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sys.LoadModel(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded model %d: %s (%.2f MB of weights)\n",
		model, app.SCN, float64(app.SCN.WeightBytes())/1e6)

	// query + getResults: top-5 most similar images for a fresh query.
	query := deepstore.NewFeatureDB(app, 1, 99).Vectors[0]
	qid, err := sys.Query(deepstore.QuerySpec{QFV: query, K: 5, Model: model, DB: dbID})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.GetResults(qid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop-%d results (in-storage latency %v, %.2f mJ):\n",
		len(res.TopK), res.Latency, res.Energy.Total()*1e3)
	for rank, r := range res.TopK {
		fmt.Printf("  #%d  feature %5d  score %+.4f  flash page %d\n",
			rank+1, r.FeatureID, r.Score, r.ObjectID)
	}
}
