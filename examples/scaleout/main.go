// Scale-out: shard a feature database across multiple DeepStore SSDs
// (§6.3, Fig. 10b). Each device scans its shard with its own channel-level
// accelerators; the cluster's query latency is the slowest shard, so
// DeepStore's compute capability scales linearly with the number of devices
// while the GPU+SSD baseline only aggregates read bandwidth.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	app, err := deepstore.AppByName("MIR")
	if err != nil {
		log.Fatal(err)
	}
	const features = 2_000_000 // ~4 GB of audio embeddings

	fmt.Printf("MIR library: %d features (%.1f GB) across a DeepStore cluster\n\n",
		features, float64(features*app.FeatureBytes())/1e9)
	fmt.Println("SSDs  shard scan   cluster speedup")
	var oneSSD float64
	for _, n := range []int{1, 2, 4, 8} {
		res, err := deepstore.ShardedScan(n, app, deepstore.LevelChannel,
			deepstore.DefaultDeviceConfig(), features, 1500)
		if err != nil {
			log.Fatal(err)
		}
		sec := res.Seconds()
		if n == 1 {
			oneSSD = sec
		}
		fmt.Printf("%4d  %8.3f s  %10.2fx  (imbalance %.1f%%)\n",
			n, sec, oneSSD/sec, res.Imbalance()*100)
	}
	fmt.Println("\nlinear scaling: every added SSD brings its own 32 channel-level")
	fmt.Println("accelerators along with its flash bandwidth (§6.3).")
}
