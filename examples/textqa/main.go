// Question answering with the similarity-based query cache (§4.6): a QA
// service sees repeated and re-phrased questions, so DeepStore's in-storage
// query cache answers semantically similar queries without scanning the
// whole answer corpus. This example issues a stream of questions where
// rephrasings recur, and reports the hit rate and the latency gap between
// cache hits and full scans.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	app, err := deepstore.AppByName("TextQA")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(1)

	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Corpus: 20,000 candidate answers (0.8 KB feature vectors).
	corpus := deepstore.NewFeatureDB(app, 20_000, 5)
	dbID, err := sys.WriteDB(corpus.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}

	// A QCN that scores two questions' similarity: dot-product front end
	// and a sigmoid head, with every weight positive so identical unit
	// queries score near 1.
	dims := app.SCN.FeatureElems()
	qcn, err := deepstore.NewNetwork("qa-qcn", []int{dims}, deepstore.CombineHadamard,
		deepstore.NewFC("sum", dims, 1, deepstore.ActSigmoid))
	if err != nil {
		log.Fatal(err)
	}
	// Hand-set weights: the QCN's similarity is a scaled dot product.
	setUniformWeights(qcn, 0.5)

	// setQC: 64 cache entries, QCN accuracy 0.95, 15% error threshold.
	if err := sys.SetQC(qcn, 0.95, 64, 0.15); err != nil {
		log.Fatal(err)
	}

	// Question stream: 30 distinct questions, Zipf-like recurrence with
	// small per-occurrence paraphrase noise.
	distinct := make([][]float32, 30)
	for i := range distinct {
		distinct[i] = deepstore.NewFeatureDB(app, 1, int64(100+i)).Vectors[0]
	}
	rng := rand.New(rand.NewSource(9))

	var hitLatency, missLatency float64
	var hits, misses int
	for i := 0; i < 120; i++ {
		base := distinct[rng.Intn(10)] // hot subset
		q := make([]float32, dims)
		for j := range q {
			q[j] = base[j] + 0.01*(rng.Float32()*2-1) // paraphrase noise
		}
		qid, err := sys.Query(deepstore.QuerySpec{QFV: q, K: 5, Model: model, DB: dbID})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.GetResults(qid)
		if err != nil {
			log.Fatal(err)
		}
		if res.CacheHit {
			hits++
			hitLatency += res.Latency.Seconds()
		} else {
			misses++
			missLatency += res.Latency.Seconds()
		}
	}

	fmt.Printf("question stream: %d queries, %d cache hits, %d misses (%.0f%% hit rate)\n",
		hits+misses, hits, misses, 100*float64(hits)/float64(hits+misses))
	if hits > 0 && misses > 0 {
		avgHit := hitLatency / float64(hits)
		avgMiss := missLatency / float64(misses)
		fmt.Printf("average hit latency:  %.3f ms\n", avgHit*1e3)
		fmt.Printf("average miss latency: %.3f ms (full corpus scan)\n", avgMiss*1e3)
		fmt.Printf("cache hits are %.0fx faster — the Fig. 13 effect\n", avgMiss/avgHit)
	}
}

// setUniformWeights fills every FC weight of the network with v.
func setUniformWeights(net *deepstore.Network, v float32) {
	for _, l := range net.Layers {
		if fc, ok := l.(*deepstore.FC); ok {
			for i := range fc.W {
				fc.W[i] = v
			}
		}
	}
}
