// Person re-identification (ReId): the paper's most compute-intensive
// workload — 44 KB feature maps compared by a conv+FC network. This example
// contrasts the accelerator levels on the same query: ReId runs at the SSD
// and channel levels but is infeasible at the chip level (§6.2), and its
// 10.7 MB of weights exceed every scratchpad, forcing DRAM weight streaming.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	app, err := deepstore.AppByName("ReId")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(3)

	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A gallery of 2,000 pedestrian crops (each feature is a 32x22x16
	// activation map from the backbone, 44 KB -> three flash pages).
	gallery := deepstore.NewFeatureDB(app, 2000, 7)
	dbID, err := sys.WriteDB(gallery.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}

	probe := deepstore.NewFeatureDB(app, 1, 42).Vectors[0]

	fmt.Println("person re-identification across accelerator levels:")
	for _, level := range []deepstore.Level{deepstore.LevelSSD, deepstore.LevelChannel, deepstore.LevelChip} {
		lvl := level
		qid, err := sys.Query(deepstore.QuerySpec{
			QFV: probe, K: 3, Model: model, DB: dbID, Level: &lvl,
		})
		if err != nil {
			fmt.Printf("  %-8s unsupported: %v\n", level, err)
			continue
		}
		res, err := sys.GetResults(qid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s latency %-12v energy %8.2f mJ  best match: person %d (score %+.4f)\n",
			level, res.Latency, res.Energy.Total()*1e3, res.TopK[0].FeatureID, res.TopK[0].Score)
	}

	fmt.Println("\nnote: the chip-level accelerator cannot execute ReId's conv")
	fmt.Println("layers within its 512 KB scratchpad — the same limitation the")
	fmt.Println("paper reports in §6.2.")
}
