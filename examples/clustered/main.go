// Clustered retrieval: the §7 feature-reorganization extension driven
// through the public API. The catalog is clustered offline, written to the
// SSD in cluster-contiguous order, and each query scans only its best
// clusters using the query API's db_start/db_end range arguments — cutting
// flash traffic by the pruned fraction while (on clustered data) keeping
// the same answers.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/reorg"
)

func main() {
	app, err := deepstore.AppByName("TextQA")
	if err != nil {
		log.Fatal(err)
	}
	fe := app.SCN.FeatureElems()

	// A similarity-faithful SCN (uniform positive dot-product head).
	scn, err := deepstore.NewNetwork("clustered-scn", []int{fe}, deepstore.CombineHadamard,
		deepstore.NewFC("sum", fe, 1, deepstore.ActSigmoid))
	if err != nil {
		log.Fatal(err)
	}
	if fc, ok := scn.Layers[0].(*deepstore.FC); ok {
		for i := range fc.W {
			fc.W[i] = 0.05
		}
	}

	// Corpus with clusterable structure: 20 topics x 100 documents.
	const topics, perTopic = 20, 100
	topicVecs := deepstore.NewFeatureDB(app, topics, 3)
	noise := deepstore.NewFeatureDB(app, topics*perTopic, 4)
	corpus := make([][]float32, topics*perTopic)
	for i := range corpus {
		topic := topicVecs.Vectors[i/perTopic]
		v := make([]float32, fe)
		for j := range v {
			v[j] = topic[j] + 0.2*noise.Vectors[i][j]
		}
		corpus[i] = v
	}

	// Offline: cluster and reorder the corpus before writing it.
	cl, err := reorg.KMeans(corpus, 16, 15, 5)
	if err != nil {
		log.Fatal(err)
	}
	ordered := make([][]float32, len(corpus))
	for pos, orig := range cl.Order {
		ordered[pos] = corpus[orig]
	}

	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	dbID, err := sys.WriteDB(ordered)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(scn)
	if err != nil {
		log.Fatal(err)
	}

	// Online: a query about topic 7, scanning only its two best clusters.
	query := make([]float32, fe)
	qNoise := deepstore.NewFeatureDB(app, 1, 9).Vectors[0]
	for j := range query {
		query[j] = topicVecs.Vectors[7][j] + 0.05*qNoise[j]
	}
	ranked := cl.RankClusters(func(cent []float32) float32 { return scn.Score(query, cent) })

	var scanned int64
	best := struct {
		id    int64
		score float32
	}{id: -1}
	var prunedLatency float64
	for _, c := range ranked[:2] {
		start := int64(cl.Offsets[c])
		end := int64(cl.Offsets[c+1])
		scanned += end - start
		qid, err := sys.Query(deepstore.QuerySpec{
			QFV: query, K: 1, Model: model, DB: dbID, DBStart: start, DBEnd: end,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.GetResults(qid)
		if err != nil {
			log.Fatal(err)
		}
		prunedLatency += res.Latency.Seconds()
		if len(res.TopK) > 0 && (best.id < 0 || res.TopK[0].Score > best.score) {
			best.id = res.TopK[0].FeatureID
			best.score = res.TopK[0].Score
		}
	}

	// Reference: the full scan.
	qid, err := sys.Query(deepstore.QuerySpec{QFV: query, K: 1, Model: model, DB: dbID})
	if err != nil {
		log.Fatal(err)
	}
	full, err := sys.GetResults(qid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d documents in 16 clusters (cluster-contiguous on flash)\n", len(corpus))
	fmt.Printf("pruned scan: %d documents (%.0f%% of corpus), latency %.3f ms\n",
		scanned, 100*float64(scanned)/float64(len(corpus)), prunedLatency*1e3)
	fmt.Printf("full scan:   %d documents, latency %.3f ms\n",
		len(corpus), full.Latency.Seconds()*1e3)
	agree := best.id == full.TopK[0].FeatureID
	fmt.Printf("top answer agrees with full scan: %v (doc %d, score %.4f)\n",
		agree, best.id, best.score)
}
