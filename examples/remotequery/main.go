// Remote query: drives DeepStore through its NVMe-style command protocol —
// the Table 2 API "internally uses new NVMe commands to interact with the
// query engine" (§4.7.2). The host-side client and the device-side engine
// run on the two ends of a duplex byte stream; every operation crosses the
// wire in its command/completion encoding, exactly as a driver would submit
// it.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/workload"
)

func main() {
	// Device side: the query engine on the SSD's embedded cores, behind a
	// command dispatcher.
	engine, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	hostSide, devSide := net.Pipe()
	go func() {
		defer devSide.Close()
		if err := proto.Serve(devSide, &proto.Handler{DS: engine}); err != nil {
			log.Printf("device: %v", err)
		}
	}()
	defer hostSide.Close()

	// Host side: the typed client over the stream transport.
	client := proto.NewClient(proto.NewStream(hostSide))

	app, err := workload.ByName("ESTP")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(13)
	catalog := workload.NewFeatureDB(app, 4000, 31)

	dbID, err := client.WriteDB(catalog.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writeDB     -> db_id %d (%d garment features over the wire)\n", dbID, catalog.Len())

	model, err := client.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadModel   -> model_id %d (%.1f MB model blob)\n",
		model, float64(app.SCN.WeightBytes())/1e6)

	// A shopper's photo: find the three closest catalog items.
	photo := workload.NewFeatureDB(app, 1, 8).Vectors[0]
	qid, err := client.Query(photo, 3, model, dbID, 0, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query       -> query_id %d\n", qid)

	res, err := client.GetResults(qid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("getResults  -> %d rows, in-storage latency %v\n\n", len(res.IDs), res.Latency)
	for rank := range res.IDs {
		fmt.Printf("  #%d  item %4d  score %+.4f  (flash page %d)\n",
			rank+1, res.IDs[rank], res.Scores[rank], res.Objects[rank])
	}

	// Read the winning item's feature vector back over readDB.
	item, err := client.ReadDB(dbID, res.IDs[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreadDB      -> fetched item %d's %d-dim feature vector\n", res.IDs[0], len(item[0]))
}
