// Remote query: drives DeepStore through its NVMe-style command protocol —
// the Table 2 API "internally uses new NVMe commands to interact with the
// query engine" (§4.7.2). The host-side client and the device-side engine
// run on the two ends of a duplex byte stream; every operation crosses the
// wire in its command/completion encoding, exactly as a driver would submit
// it.
//
// The second half of the example turns on deterministic link faults: the
// same traffic runs through a fault-injecting transport that drops frames,
// with a resilient client that retries idempotent commands (query,
// getResults, readDB) and surfaces dropped mutations (writeDB) to the
// application for resubmission.
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/proto"
	"repro/internal/workload"
)

func main() {
	// Device side: the query engine on the SSD's embedded cores, behind a
	// command dispatcher.
	engine, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	hostSide, devSide := net.Pipe()
	go func() {
		defer devSide.Close()
		if err := proto.Serve(devSide, &proto.Handler{DS: engine}); err != nil {
			log.Printf("device: %v", err)
		}
	}()
	defer hostSide.Close()

	// Host side: the typed client over the stream transport.
	client := proto.NewClient(proto.NewStream(hostSide))

	app, err := workload.ByName("ESTP")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(13)
	catalog := workload.NewFeatureDB(app, 4000, 31)

	dbID, err := client.WriteDB(catalog.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writeDB     -> db_id %d (%d garment features over the wire)\n", dbID, catalog.Len())

	model, err := client.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadModel   -> model_id %d (%.1f MB model blob)\n",
		model, float64(app.SCN.WeightBytes())/1e6)

	// A shopper's photo: find the three closest catalog items.
	photo := workload.NewFeatureDB(app, 1, 8).Vectors[0]
	qid, err := client.Query(photo, 3, model, dbID, 0, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query       -> query_id %d\n", qid)

	res, err := client.GetResults(qid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("getResults  -> %d rows, in-storage latency %v\n\n", len(res.IDs), res.Latency)
	for rank := range res.IDs {
		fmt.Printf("  #%d  item %4d  score %+.4f  (flash page %d)\n",
			rank+1, res.IDs[rank], res.Scores[rank], res.Objects[rank])
	}

	// Read the winning item's feature vector back over readDB.
	item, err := client.ReadDB(dbID, res.IDs[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreadDB      -> fetched item %d's %d-dim feature vector\n", res.IDs[0], len(item[0]))

	// ---- The same conversation over a faulty link. ----
	// A second engine behind a transport that deterministically drops 30% of
	// frames (seed 3), and a client that retries idempotent commands with
	// bounded exponential backoff.
	engine2, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	host2, dev2 := net.Pipe()
	go func() {
		defer dev2.Close()
		_ = proto.Serve(dev2, &proto.Handler{DS: engine2})
	}()
	defer host2.Close()

	faulty := proto.NewFaultyTransport(proto.NewStream(host2),
		proto.FaultConfig{DropRate: 0.3}, fault.New(3))
	// The default per-command deadline (1s) suits simulated devices; this
	// example scores a real 4000-feature catalog on the host, so give each
	// attempt more headroom.
	policy := proto.DefaultRetryPolicy()
	policy.Deadline = 60 * time.Second
	resilient := proto.NewResilientClient(faulty, policy)

	fmt.Printf("\n--- replay over a link dropping 30%% of frames ---\n")
	// writeDB mutates device state, so the client never retries it blindly;
	// a dropped frame comes back to the application, which resubmits.
	var dbID2 ftl.DBID
	for attempt := 1; ; attempt++ {
		dbID2, err = resilient.WriteDB(catalog.Vectors)
		if err == nil {
			fmt.Printf("writeDB     -> db_id %d (attempt %d)\n", dbID2, attempt)
			break
		}
		if !errors.Is(err, fault.ErrInjected) {
			log.Fatal(err)
		}
		fmt.Printf("writeDB     -> dropped (attempt %d), resubmitting\n", attempt)
	}
	var model2 core.ModelID
	for attempt := 1; ; attempt++ {
		model2, err = resilient.LoadModelNetwork(app.SCN)
		if err == nil {
			fmt.Printf("loadModel   -> model_id %d (attempt %d)\n", model2, attempt)
			break
		}
		if !errors.Is(err, fault.ErrInjected) {
			log.Fatal(err)
		}
		fmt.Printf("loadModel   -> dropped (attempt %d), resubmitting\n", attempt)
	}

	// query and getResults are idempotent: the client retries dropped frames
	// internally and the application never sees the faults.
	qid2, err := resilient.Query(photo, 3, model2, dbID2, 0, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := resilient.GetResults(qid2)
	if err != nil {
		log.Fatal(err)
	}
	match := len(res2.IDs) == len(res.IDs)
	for i := range res.IDs {
		match = match && res2.IDs[i] == res.IDs[i]
	}
	stats := faulty.Stats()
	fmt.Printf("query       -> query_id %d, getResults -> %d rows (same top-K as clean link: %v)\n",
		qid2, len(res2.IDs), match)
	fmt.Printf("link stats  -> %d submits, %d dropped frames, all absorbed by retry\n",
		stats.Submits, stats.Drops)
}
