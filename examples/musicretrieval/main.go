// Music information retrieval (MIR): style-based music search over an audio
// feature library. This example runs a batch of audio-clip queries and uses
// the engine's range-query support to search a genre partition of the
// library, then reports the aggregate in-storage cost.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	app, err := deepstore.AppByName("MIR")
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(11)

	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Library: 30,000 track embeddings (2 KB each), conceptually split
	// into three genre partitions of 10,000 tracks.
	library := deepstore.NewFeatureDB(app, 30_000, 21)
	dbID, err := sys.WriteDB(library.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}

	genres := []struct {
		name       string
		start, end int64
	}{
		{"ambient", 0, 10_000},
		{"jazz", 10_000, 20_000},
		{"electronic", 20_000, 30_000},
	}

	// Five query clips, each searched within one genre partition via the
	// query API's db_start/db_end range arguments (Table 2).
	queries := deepstore.NewFeatureDB(app, 5, 77)
	for i, q := range queries.Vectors {
		g := genres[i%len(genres)]
		qid, err := sys.Query(deepstore.QuerySpec{
			QFV: q, K: 3, Model: model, DB: dbID,
			DBStart: g.start, DBEnd: g.end,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.GetResults(qid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("clip %d in %-10s -> tracks", i, g.name)
		for _, r := range res.TopK {
			fmt.Printf(" %d(%.3f)", r.FeatureID, r.Score)
		}
		fmt.Printf("   [%v]\n", res.Latency)
	}

	stats := sys.Stats()
	fmt.Printf("\nengine totals: %d queries, %v simulated device time, %.2f mJ\n",
		stats.Queries, stats.SimTime, stats.TotalJ*1e3)
	fmt.Println("each query scanned only its 10,000-track genre partition —")
	fmt.Println("a third of the library's flash traffic per query.")
}
