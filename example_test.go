package deepstore_test

import (
	"fmt"

	deepstore "repro"
)

// Example demonstrates the end-to-end query flow: write a feature database,
// load the application's similarity comparison network, and run an
// intelligent query against the simulated in-storage accelerators.
func Example() {
	sys, err := deepstore.New(deepstore.DefaultOptions())
	if err != nil {
		panic(err)
	}
	app, err := deepstore.AppByName("TIR")
	if err != nil {
		panic(err)
	}
	app.SCN.InitRandom(1)

	db := deepstore.NewFeatureDB(app, 1000, 2)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		panic(err)
	}
	model, err := sys.LoadModelNetwork(app.SCN)
	if err != nil {
		panic(err)
	}
	// Query with one of the stored vectors: it must rank first.
	qid, err := sys.Query(deepstore.QuerySpec{
		QFV: db.Vectors[42], K: 1, Model: model, DB: dbID,
	})
	if err != nil {
		panic(err)
	}
	res, err := sys.GetResults(qid)
	if err != nil {
		panic(err)
	}
	fmt.Println("features scanned:", res.FeaturesScanned)
	fmt.Println("results:", len(res.TopK))
	// Output:
	// features scanned: 1000
	// results: 1
}

// ExampleNewNetwork builds a custom two-branch similarity comparison network
// through the facade's layer constructors and inspects its Table 1 style
// characteristics.
func ExampleNewNetwork() {
	net, err := deepstore.NewNetwork("custom", []int{256}, deepstore.CombineHadamard,
		deepstore.NewFC("fc1", 256, 128, deepstore.ActReLU),
		deepstore.NewFC("fc2", 128, 2, deepstore.ActNone),
	)
	if err != nil {
		panic(err)
	}
	conv, fc, ew := net.CountKinds()
	fmt.Printf("layers: %d conv, %d fc, %d ew\n", conv, fc, ew)
	fmt.Printf("FLOPs per comparison: %d\n", net.FLOPsPerComparison())
	// Output:
	// layers: 0 conv, 2 fc, 1 ew
	// FLOPs per comparison: 66304
}

// ExampleGenerateTrace shows deterministic query-trace generation.
func ExampleGenerateTrace() {
	tr := deepstore.GenerateTrace(deepstore.TraceConfig{
		Universe: 100, Length: 1000, Dist: deepstore.Zipfian, Alpha: 0.7, Seed: 1,
	})
	fmt.Println("queries:", len(tr.Queries))
	fmt.Println("distinct intents <= universe:", tr.DistinctQueries() <= 100)
	// Output:
	// queries: 1000
	// distinct intents <= universe: true
}
