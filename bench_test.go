package deepstore

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment through the same code paths as
// cmd/deepstore-bench; -benchtime=1x reproduces the full set quickly, and
// the reported ns/op measures the cost of regenerating the artifact.

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/exp"
)

// benchWindow trades a little extrapolation precision for benchmark speed;
// the shape checks in internal/exp use the same window.
const benchWindow = 1000

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table1()
		if len(rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figure2()
		if len(rows) != 40 {
			b.Fatal("figure 2 incomplete")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := exp.Figure6()
		if len(points) != 9 {
			b.Fatal("figure 6 incomplete")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table3()
		if len(rows) != 3 {
			b.Fatal("table 3 incomplete")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure8(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("figure 8 incomplete")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure9(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("figure 9 incomplete")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := exp.Figure10a(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		bb, err := exp.Figure10b(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(a) == 0 || len(bb) == 0 {
			b.Fatal("figure 10 incomplete")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure8(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Figure11(rows)) == 0 {
			b.Fatal("figure 11 incomplete")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure12(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("figure 12 incomplete")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	cfg := exp.DefaultQCStudy()
	cfg.TraceLen = 6000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure13(benchWindow, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("figure 13 incomplete")
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	cfg := exp.DefaultQCStudy()
	cfg.TraceLen = 6000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(exp.Figure14(cfg)) == 0 {
			b.Fatal("figure 14 incomplete")
		}
	}
}

// Extension-study benchmarks: interference (§4.5 claim), query-cache recall
// (§4.6 premise), feature reorganization (§7 pointer), and the sustained-
// throughput envelope.

func BenchmarkInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Interference("MIR", accel.LevelChannel, 32_000, 8_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQCRecall(b *testing.B) {
	cfg := exp.DefaultRecall()
	cfg.Features = 1000
	cfg.Queries = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.QCRecall(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorgStudy(b *testing.B) {
	cfg := exp.DefaultReorg()
	cfg.Features = 1500
	cfg.Queries = 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ReorgStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Throughput(benchWindow, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out: the §4.5
// dataflow assignment and the §7 precision extension.

func BenchmarkAblationDataflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationDataflow(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationPrecision(benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkQuantSweep(b *testing.B) {
	cfg := exp.DefaultQuant()
	cfg.Features = 8192
	cfg.Queries = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.QuantSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("quant sweep incomplete")
		}
	}
}

// BenchmarkScoreRange measures one full-database query on a 100k-feature
// TIR database (1.5 MB of FC weights per comparison — the weight-streaming
// regime of the §2–§3 scan) across the three scan implementations: the
// serial reference, the per-feature worker pool, and the batched GEMM path
// (the default). Batched runs >= 2x faster than per-feature at equal worker
// count — the weight matrices stream from memory once per batch instead of
// once per feature — and all three return bit-identical results (see core's
// equivalence tests). Reported metrics: features/sec and ns/feature of the
// functional scan.
func BenchmarkScoreRange(b *testing.B) {
	const features = 100_000
	setup := func(b *testing.B, mode ScanMode) (*System, QuerySpec) {
		b.Helper()
		opts := DefaultOptions()
		opts.Scan = mode
		sys, err := New(opts)
		if err != nil {
			b.Fatal(err)
		}
		app, err := AppByName("TIR")
		if err != nil {
			b.Fatal(err)
		}
		app.SCN.InitRandom(1)
		db := NewFeatureDB(app, features, 42)
		dbID, err := sys.WriteDB(db.Vectors)
		if err != nil {
			b.Fatal(err)
		}
		model, err := sys.LoadModelNetwork(app.SCN)
		if err != nil {
			b.Fatal(err)
		}
		return sys, QuerySpec{QFV: db.Vectors[0], K: 10, Model: model, DB: dbID}
	}
	for _, mode := range []struct {
		name string
		scan ScanMode
	}{{"serial", ScanSerial}, {"parallel", ScanPerFeature}, {"batched", ScanBatched}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, spec := setup(b, mode.scan)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qid, err := sys.Query(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.GetResults(qid); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perQuery := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(features)/perQuery, "features/s")
			b.ReportMetric(perQuery*1e9/float64(features), "ns/feature")
		})
	}
}
