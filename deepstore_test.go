package deepstore

import (
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as a downstream user
// would: build a database, load a model, query, and read results.
func TestFacadeEndToEnd(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, err := AppByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(7)
	db := NewFeatureDB(app, 128, 11)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalModel(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sys.LoadModel(data)
	if err != nil {
		t.Fatal(err)
	}
	q := NewFeatureDB(app, 1, 99).Vectors[0]
	qid, err := sys.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 3 {
		t.Fatalf("topK = %d", len(res.TopK))
	}
	if res.Latency <= 0 {
		t.Error("no latency")
	}
}

func TestFacadeCustomNetwork(t *testing.T) {
	// Build a custom SCN through the facade's layer constructors.
	net, err := NewNetwork("custom", []int{64}, CombineHadamard,
		NewFC("fc1", 64, 32, ActReLU),
		NewFC("fc2", 32, 1, ActSigmoid),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.InitRandom(5)
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vectors := make([][]float32, 32)
	for i := range vectors {
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32((i*j)%7) / 7
		}
		vectors[i] = v
	}
	dbID, err := sys.WriteDB(vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	lvl := LevelChip
	qid, err := sys.Query(QuerySpec{QFV: vectors[3], K: 1, Model: model, DB: dbID, Level: &lvl})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 1 {
		t.Fatal("no result")
	}
}

func TestFacadeQuantization(t *testing.T) {
	v := []float32{0.5, -1.0, 0.25, 0}
	q := QuantizeVector(v)
	back := q.Dequantize()
	for i := range v {
		if diff := v[i] - back[i]; diff > 0.01 || diff < -0.01 {
			t.Fatalf("dequantized[%d] = %v, want ~%v", i, back[i], v[i])
		}
	}
	if err := QuantizationError(v); err > 0.01 {
		t.Errorf("quantization error %v", err)
	}
	if dbq := QuantizeDB([][]float32{v, v}); len(dbq) != 2 {
		t.Error("QuantizeDB wrong length")
	}
	net, _ := NewNetwork("q", []int{4}, CombineHadamard, NewFC("f", 4, 1, ActSigmoid))
	net.InitRandom(1)
	drift, err := ScoreDrift(net, [][]float32{v}, [][]float32{v})
	if err != nil {
		t.Fatal(err)
	}
	if drift > 0.05 {
		t.Errorf("score drift %v", drift)
	}
}

func TestAppsFacade(t *testing.T) {
	if len(Apps()) != 5 {
		t.Error("Apps() incomplete")
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}
